// Command sweep measures the context prefetcher's sensitivity to one
// configuration parameter: it runs a workload across a list of values and
// prints speedup (vs no prefetching), MPKI and learning metrics per value.
//
// Usage:
//
//	sweep -workload list -param epsilon -values 0,0.02,0.05,0.1,0.2
//	sweep -workload mcf -param maxdegree -values 1,2,4,8 -scale 0.5
//	sweep -params                      # list sweepable parameters
//
// Every -values entry is parsed and validated up front, before the
// expensive baseline simulation, so a typo in the last value fails fast.
// SIGINT/SIGTERM cancel in-flight simulations; the partial table is
// printed. The result table goes to stdout; progress and diagnostics go
// to stderr as structured logs (-q silences them). Exit codes:
// 0 completed, 1 a run failed, 2 usage error, 3 cancelled (see DESIGN.md,
// "Failure model").
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"semloc/internal/core"
	"semloc/internal/harness"
	"semloc/internal/obs"
	"semloc/internal/prefetch"
	"semloc/internal/sim"
	"semloc/internal/stats"
	"semloc/internal/trace"
	"semloc/internal/workloads"
)

// param describes one sweepable configuration axis.
type param struct {
	name  string
	desc  string
	apply func(cfg *core.Config, v string) error
}

var params = []param{
	{"epsilon", "exploration rate of the ε-greedy policy", func(c *core.Config, v string) error {
		f, err := strconv.ParseFloat(v, 64)
		c.Epsilon = f
		return err
	}},
	{"maxdegree", "maximum prefetches per access", func(c *core.Config, v string) error {
		n, err := strconv.Atoi(v)
		c.MaxDegree = n
		return err
	}},
	{"cstentries", "context-states-table entries (reducer scales at 8x)", func(c *core.Config, v string) error {
		n, err := strconv.Atoi(v)
		c.CSTEntries = n
		c.ReducerEntries = n * 8
		return err
	}},
	{"cstlinks", "candidate links per CST entry", func(c *core.Config, v string) error {
		n, err := strconv.Atoi(v)
		c.CSTLinks = n
		return err
	}},
	{"history", "history queue depth (sample depths adjust to fit)", func(c *core.Config, v string) error {
		n, err := strconv.Atoi(v)
		if err != nil {
			return err
		}
		c.HistoryDepth = n
		var depths []int
		for d := 1; d < n; d++ {
			depths = append(depths, d)
		}
		c.SampleDepths = depths
		return nil
	}},
	{"queue", "prefetch queue depth", func(c *core.Config, v string) error {
		n, err := strconv.Atoi(v)
		c.QueueDepth = n
		return err
	}},
	{"blockshift", "log2 of the prefetch block size", func(c *core.Config, v string) error {
		n, err := strconv.Atoi(v)
		c.BlockShift = uint(n)
		return err
	}},
	{"rewardhigh", "upper edge of the positive reward window", func(c *core.Config, v string) error {
		n, err := strconv.Atoi(v)
		c.Reward.High = n
		return err
	}},
	{"policy", "exploration policy (egreedy, softmax, ucb)", func(c *core.Config, v string) error {
		p, err := core.ParsePolicy(v)
		c.Policy = p
		return err
	}},
}

func findParam(name string) (param, bool) {
	for _, p := range params {
		if p.name == name {
			return p, true
		}
	}
	return param{}, false
}

// sweepPoint is one pre-validated value of the swept parameter.
type sweepPoint struct {
	value string
	cfg   core.Config
}

// validateValues parses and validates every swept value against the
// default configuration, before any simulation work happens. The returned
// error names the parameter and the offending value.
func validateValues(p param, values string) ([]sweepPoint, error) {
	var points []sweepPoint
	for _, v := range strings.Split(values, ",") {
		v = strings.TrimSpace(v)
		cfg := core.DefaultConfig()
		if err := p.apply(&cfg, v); err != nil {
			return nil, fmt.Errorf("-param %s value %q: %w", p.name, v, err)
		}
		if err := cfg.Validate(); err != nil {
			return nil, fmt.Errorf("-param %s value %q: %w", p.name, v, err)
		}
		points = append(points, sweepPoint{value: v, cfg: cfg})
	}
	return points, nil
}

func main() { os.Exit(run()) }

func run() int {
	var (
		workload  = flag.String("workload", "list", "workload name")
		paramName = flag.String("param", "", "parameter to sweep (see -params)")
		values    = flag.String("values", "", "comma-separated parameter values")
		scale     = flag.Float64("scale", 0.3, "workload scale factor")
		seed      = flag.Uint64("seed", 1, "workload seed")
		list      = flag.Bool("params", false, "list sweepable parameters")
		stall     = flag.Duration("stall", 0, "abort a run making no forward progress for this long (0 disables the watchdog)")
		quiet     = flag.Bool("q", false, "suppress progress logging (errors still print)")
	)
	flag.Parse()
	logger := obs.NewLogger(os.Stderr, "sweep", *quiet, false)

	if *list {
		sort.Slice(params, func(i, j int) bool { return params[i].name < params[j].name })
		for _, p := range params {
			fmt.Printf("%-12s %s\n", p.name, p.desc)
		}
		return harness.ExitOK
	}
	p, ok := findParam(*paramName)
	if !ok {
		logger.Error("unknown parameter (see -params)", "param", *paramName)
		return harness.ExitUsage
	}
	if *values == "" {
		logger.Error("-values required")
		return harness.ExitUsage
	}
	// Validate every value before paying for the baseline simulation.
	points, err := validateValues(p, *values)
	if err != nil {
		logger.Error("invalid sweep values", "err", err)
		return harness.ExitUsage
	}
	w, err := workloads.ByName(*workload)
	if err != nil {
		logger.Error("unknown workload", "err", err)
		return harness.ExitUsage
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rc := harness.RunConfig{StallTimeout: *stall}

	var tr *trace.Trace
	if err := harness.Safely(func() error {
		tr = w.Generate(workloads.GenConfig{Scale: *scale, Seed: *seed})
		return nil
	}); err != nil {
		logger.Error("generating workload", "workload", *workload, "err", err)
		return harness.ExitRunFailed
	}
	machine := sim.DefaultConfig()

	start := time.Now()
	base, err := harness.Run(ctx, tr, prefetch.NewNone(), machine, rc)
	if err != nil {
		if harness.IsCancelled(err) {
			logger.Error("cancelled")
			return harness.ExitCancelled
		}
		logger.Error("baseline run failed", "err", err)
		return harness.ExitRunFailed
	}
	logger.Info("baseline complete", "workload", *workload, "prefetcher", "none",
		"duration", time.Since(start).Round(time.Millisecond))

	tb := stats.NewTable(
		fmt.Sprintf("sweep %s over %s on %s (scale %g)", *paramName, *values, *workload, *scale),
		*paramName, "speedup", "IPC", "L1 MPKI", "accuracy", "real-prefetches", "storage")
	failed, cancelled := 0, false
	for _, pt := range points {
		if ctx.Err() != nil {
			cancelled = true
			break
		}
		pf, err := core.New(pt.cfg)
		if err != nil {
			// Validated above, so this indicates a bug; still report cleanly.
			logger.Error("building prefetcher", "value", pt.value, "err", err)
			return harness.ExitUsage
		}
		start := time.Now()
		res, err := harness.Run(ctx, tr, pf, machine, rc)
		if err != nil {
			if harness.IsCancelled(err) {
				cancelled = true
				break
			}
			logger.Error("sweep point failed", "value", pt.value, "err", err)
			failed++
			continue
		}
		logger.Info("sweep point complete", "workload", *workload, "param", *paramName,
			"value", pt.value, "duration", time.Since(start).Round(time.Millisecond))
		m := pf.Metrics()
		tb.AddRow(pt.value, res.IPC()/base.IPC(), res.IPC(), res.L1MPKI(), pf.Accuracy(),
			m.RealPrefetches, fmt.Sprintf("%dkB", pt.cfg.StorageBytes()>>10))
	}
	tb.Render(os.Stdout)
	switch {
	case cancelled:
		logger.Error("cancelled; partial results above")
		return harness.ExitCancelled
	case failed > 0:
		return harness.ExitRunFailed
	}
	return harness.ExitOK
}
