// Command sweep measures the context prefetcher's sensitivity to one
// configuration parameter: it runs a workload across a list of values and
// prints speedup (vs no prefetching), MPKI and learning metrics per value.
//
// Usage:
//
//	sweep -workload list -param epsilon -values 0,0.02,0.05,0.1,0.2
//	sweep -workload mcf -param maxdegree -values 1,2,4,8 -scale 0.5
//	sweep -workload list -param epsilon -values 0,0.1 -parallel 8
//	sweep -params                      # list sweepable parameters
//
// Every -values entry is parsed and validated up front, before the
// expensive baseline simulation, so a typo in the last value fails fast.
// Sweep points run on the experiment engine's worker pool (-parallel,
// default GOMAXPROCS); each point's RNG seed derives from its coordinates,
// so the table is bit-identical at any parallelism. SIGINT/SIGTERM cancel
// in-flight simulations; the partial table is printed. The result table
// goes to stdout; progress and diagnostics go to stderr as structured logs
// (-q silences them). -listen serves live metrics (Prometheus /metrics,
// expvar, pprof) while the sweep runs; -spans records a Perfetto-loadable
// span trace of every cell (inspect it with "inspect spans"). -timeout
// bounds the whole sweep with a hard wall-clock deadline; exceeding it is
// a run failure, not a cancellation. Exit codes: 0 completed, 1 a run
// failed (including -timeout expiry), 2 usage error, 3 cancelled (see
// DESIGN.md, "Failure model").
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"semloc/internal/core"
	"semloc/internal/exp"
	"semloc/internal/harness"
	"semloc/internal/obs"
	"semloc/internal/stats"
	"semloc/internal/workloads"
)

// param describes one sweepable configuration axis.
type param struct {
	name  string
	desc  string
	apply func(cfg *core.Config, v string) error
}

var params = []param{
	{"epsilon", "exploration rate of the ε-greedy policy", func(c *core.Config, v string) error {
		f, err := strconv.ParseFloat(v, 64)
		c.Epsilon = f
		return err
	}},
	{"maxdegree", "maximum prefetches per access", func(c *core.Config, v string) error {
		n, err := strconv.Atoi(v)
		c.MaxDegree = n
		return err
	}},
	{"cstentries", "context-states-table entries (reducer scales at 8x)", func(c *core.Config, v string) error {
		n, err := strconv.Atoi(v)
		c.CSTEntries = n
		c.ReducerEntries = n * 8
		return err
	}},
	{"cstlinks", "candidate links per CST entry", func(c *core.Config, v string) error {
		n, err := strconv.Atoi(v)
		c.CSTLinks = n
		return err
	}},
	{"history", "history queue depth (sample depths adjust to fit)", func(c *core.Config, v string) error {
		n, err := strconv.Atoi(v)
		if err != nil {
			return err
		}
		c.HistoryDepth = n
		var depths []int
		for d := 1; d < n; d++ {
			depths = append(depths, d)
		}
		c.SampleDepths = depths
		return nil
	}},
	{"queue", "prefetch queue depth", func(c *core.Config, v string) error {
		n, err := strconv.Atoi(v)
		c.QueueDepth = n
		return err
	}},
	{"blockshift", "log2 of the prefetch block size", func(c *core.Config, v string) error {
		n, err := strconv.Atoi(v)
		c.BlockShift = uint(n)
		return err
	}},
	{"rewardhigh", "upper edge of the positive reward window", func(c *core.Config, v string) error {
		n, err := strconv.Atoi(v)
		c.Reward.High = n
		return err
	}},
	{"policy", "exploration policy (egreedy, softmax, ucb)", func(c *core.Config, v string) error {
		p, err := core.ParsePolicy(v)
		c.Policy = p
		return err
	}},
}

func findParam(name string) (param, bool) {
	for _, p := range params {
		if p.name == name {
			return p, true
		}
	}
	return param{}, false
}

// sweepPoint is one pre-validated value of the swept parameter.
type sweepPoint struct {
	value string
	cfg   core.Config
}

// validateValues parses and validates every swept value against the
// default configuration, before any simulation work happens. The returned
// error names the parameter and the offending value.
func validateValues(p param, values string) ([]sweepPoint, error) {
	var points []sweepPoint
	for _, v := range strings.Split(values, ",") {
		v = strings.TrimSpace(v)
		cfg := core.DefaultConfig()
		if err := p.apply(&cfg, v); err != nil {
			return nil, fmt.Errorf("-param %s value %q: %w", p.name, v, err)
		}
		if err := cfg.Validate(); err != nil {
			return nil, fmt.Errorf("-param %s value %q: %w", p.name, v, err)
		}
		points = append(points, sweepPoint{value: v, cfg: cfg})
	}
	return points, nil
}

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		workload  = fs.String("workload", "list", "workload name")
		paramName = fs.String("param", "", "parameter to sweep (see -params)")
		values    = fs.String("values", "", "comma-separated parameter values")
		scale     = fs.Float64("scale", 0.3, "workload scale factor")
		seed      = fs.Uint64("seed", 1, "workload seed")
		parallel  = fs.Int("parallel", 0, "concurrent simulations (0 = GOMAXPROCS)")
		list      = fs.Bool("params", false, "list sweepable parameters")
		stall     = fs.Duration("stall", 0, "abort a run making no forward progress for this long (0 disables the watchdog)")
		timeout   = fs.Duration("timeout", 0, "hard wall-clock budget for the whole sweep; exceeding it exits 1 (0 disables)")
		quiet     = fs.Bool("q", false, "suppress progress logging (errors still print)")
		listen    = fs.String("listen", "", "serve /metrics, /debug/vars and pprof on this address while the sweep runs (empty host binds loopback)")
		spansPath = fs.String("spans", "", "write a Chrome trace-event span file (Perfetto-loadable) here on exit")
	)
	if err := fs.Parse(args); err != nil {
		return harness.ExitUsage
	}
	logger := obs.NewLogger(stderr, "sweep", *quiet, false)

	if *list {
		sort.Slice(params, func(i, j int) bool { return params[i].name < params[j].name })
		for _, p := range params {
			fmt.Fprintf(stdout, "%-12s %s\n", p.name, p.desc)
		}
		return harness.ExitOK
	}
	p, ok := findParam(*paramName)
	if !ok {
		logger.Error("unknown parameter (see -params)", "param", *paramName)
		return harness.ExitUsage
	}
	if *values == "" {
		logger.Error("-values required")
		return harness.ExitUsage
	}
	// Validate every value before paying for the baseline simulation.
	points, err := validateValues(p, *values)
	if err != nil {
		logger.Error("invalid sweep values", "err", err)
		return harness.ExitUsage
	}
	if _, err := workloads.ByName(*workload); err != nil {
		logger.Error("unknown workload", "err", err)
		return harness.ExitUsage
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// The deadline threads through the same cancellation path as signals;
	// harness.IsTimeout distinguishes the two at exit-code time.
	ctx, cancelTimeout := harness.WithTimeout(ctx, *timeout)
	defer cancelTimeout()

	live, err := obs.StartLive(ctx, logger, *listen, *spansPath, 0)
	if err != nil {
		logger.Error("observability setup failed", "err", err)
		return harness.ExitUsage
	}
	defer live.Close()

	opts := exp.DefaultOptions()
	opts.Scale = *scale
	opts.Seed = *seed
	opts.Parallelism = *parallel
	opts.Harness = harness.RunConfig{StallTimeout: *stall}
	opts.Metrics = live.Reg
	opts.Spans = live.Spans
	runner := exp.NewRunnerContext(ctx, opts)
	live.Ready()

	// Job 0 is the shared no-prefetch baseline; jobs 1..n are the sweep
	// points, each a parameterised run whose seed derives from its point
	// index — the schedule (and -parallel) cannot change the table.
	jobs := make([]exp.Job, 0, 1+len(points))
	jobs = append(jobs, exp.Job{Workload: *workload, Prefetcher: "none"})
	for i, pt := range points {
		cfg := pt.cfg
		jobs = append(jobs, exp.Job{Workload: *workload, Prefetcher: "context", Point: i, Config: &cfg})
	}

	eff := *parallel
	if eff <= 0 {
		eff = runtime.GOMAXPROCS(0)
	}
	start := time.Now()
	results, batchErr := runner.RunJobs(jobs)
	logger.Info("sweep batch complete", "workload", *workload, "param", *paramName,
		"points", len(points), "parallel", eff)

	tb := stats.NewTable(
		fmt.Sprintf("sweep %s over %s on %s (scale %g)", *paramName, *values, *workload, *scale),
		*paramName, "speedup", "IPC", "L1 MPKI", "accuracy", "real-prefetches", "storage")
	failed, cancelled := 0, false

	base := results[0]
	switch {
	case base.Err != nil && harness.IsCancelled(base.Err):
		cancelled = true
	case base.Err != nil:
		logger.Error("baseline run failed", "err", base.Err)
		failed++
	case base.Result.IPC() == 0:
		logger.Error("baseline IPC is zero")
		failed++
	}
	for i, pt := range points {
		jr := results[1+i]
		switch {
		case jr.Err != nil && harness.IsCancelled(jr.Err):
			cancelled = true
			continue
		case jr.Err != nil:
			logger.Error("sweep point failed", "value", pt.value, "err", jr.Err)
			failed++
			continue
		case base.Err != nil || base.Result.IPC() == 0:
			continue // speedup undefined without the baseline
		}
		pf, ok := jr.Prefetcher.(*core.Prefetcher)
		if !ok {
			logger.Error("sweep point returned no context prefetcher", "value", pt.value)
			failed++
			continue
		}
		m := pf.Metrics()
		tb.AddRow(pt.value, jr.Result.IPC()/base.Result.IPC(), jr.Result.IPC(), jr.Result.L1MPKI(), pf.Accuracy(),
			m.RealPrefetches, fmt.Sprintf("%dkB", pt.cfg.StorageBytes()>>10))
	}
	tb.Render(stdout)
	logger.Info("sweep complete", "duration", time.Since(start).Round(time.Millisecond))

	switch {
	case harness.IsTimeout(context.Cause(ctx)):
		logger.Error("timed out; partial results above", "timeout", *timeout)
		return harness.ExitRunFailed
	case batchErr != nil:
		logger.Error("batch integrity check failed", "err", batchErr)
		return harness.ExitRunFailed
	case cancelled:
		logger.Error("cancelled; partial results above")
		return harness.ExitCancelled
	case failed > 0:
		return harness.ExitRunFailed
	}
	return harness.ExitOK
}
