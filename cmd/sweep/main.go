// Command sweep measures the context prefetcher's sensitivity to one
// configuration parameter: it runs a workload across a list of values and
// prints speedup (vs no prefetching), MPKI and learning metrics per value.
//
// Usage:
//
//	sweep -workload list -param epsilon -values 0,0.02,0.05,0.1,0.2
//	sweep -workload mcf -param maxdegree -values 1,2,4,8 -scale 0.5
//	sweep -params                      # list sweepable parameters
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"semloc/internal/core"
	"semloc/internal/prefetch"
	"semloc/internal/sim"
	"semloc/internal/stats"
	"semloc/internal/workloads"
)

// param describes one sweepable configuration axis.
type param struct {
	name  string
	desc  string
	apply func(cfg *core.Config, v string) error
}

var params = []param{
	{"epsilon", "exploration rate of the ε-greedy policy", func(c *core.Config, v string) error {
		f, err := strconv.ParseFloat(v, 64)
		c.Epsilon = f
		return err
	}},
	{"maxdegree", "maximum prefetches per access", func(c *core.Config, v string) error {
		n, err := strconv.Atoi(v)
		c.MaxDegree = n
		return err
	}},
	{"cstentries", "context-states-table entries (reducer scales at 8x)", func(c *core.Config, v string) error {
		n, err := strconv.Atoi(v)
		c.CSTEntries = n
		c.ReducerEntries = n * 8
		return err
	}},
	{"cstlinks", "candidate links per CST entry", func(c *core.Config, v string) error {
		n, err := strconv.Atoi(v)
		c.CSTLinks = n
		return err
	}},
	{"history", "history queue depth (sample depths adjust to fit)", func(c *core.Config, v string) error {
		n, err := strconv.Atoi(v)
		if err != nil {
			return err
		}
		c.HistoryDepth = n
		var depths []int
		for d := 1; d < n; d++ {
			depths = append(depths, d)
		}
		c.SampleDepths = depths
		return nil
	}},
	{"queue", "prefetch queue depth", func(c *core.Config, v string) error {
		n, err := strconv.Atoi(v)
		c.QueueDepth = n
		return err
	}},
	{"blockshift", "log2 of the prefetch block size", func(c *core.Config, v string) error {
		n, err := strconv.Atoi(v)
		c.BlockShift = uint(n)
		return err
	}},
	{"rewardhigh", "upper edge of the positive reward window", func(c *core.Config, v string) error {
		n, err := strconv.Atoi(v)
		c.Reward.High = n
		return err
	}},
	{"policy", "exploration policy (egreedy, softmax, ucb)", func(c *core.Config, v string) error {
		p, err := core.ParsePolicy(v)
		c.Policy = p
		return err
	}},
}

func findParam(name string) (param, bool) {
	for _, p := range params {
		if p.name == name {
			return p, true
		}
	}
	return param{}, false
}

func main() {
	var (
		workload  = flag.String("workload", "list", "workload name")
		paramName = flag.String("param", "", "parameter to sweep (see -params)")
		values    = flag.String("values", "", "comma-separated parameter values")
		scale     = flag.Float64("scale", 0.3, "workload scale factor")
		seed      = flag.Uint64("seed", 1, "workload seed")
		list      = flag.Bool("params", false, "list sweepable parameters")
	)
	flag.Parse()

	if *list {
		sort.Slice(params, func(i, j int) bool { return params[i].name < params[j].name })
		for _, p := range params {
			fmt.Printf("%-12s %s\n", p.name, p.desc)
		}
		return
	}
	p, ok := findParam(*paramName)
	if !ok {
		fmt.Fprintf(os.Stderr, "sweep: unknown parameter %q (see -params)\n", *paramName)
		os.Exit(2)
	}
	if *values == "" {
		fmt.Fprintln(os.Stderr, "sweep: -values required")
		os.Exit(2)
	}
	w, err := workloads.ByName(*workload)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(2)
	}
	tr := w.Generate(workloads.GenConfig{Scale: *scale, Seed: *seed})
	machine := sim.DefaultConfig()

	base, err := sim.Run(tr, prefetch.NewNone(), machine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}

	tb := stats.NewTable(
		fmt.Sprintf("sweep %s over %s on %s (scale %g)", *paramName, *values, *workload, *scale),
		*paramName, "speedup", "IPC", "L1 MPKI", "accuracy", "real-prefetches", "storage")
	for _, v := range strings.Split(*values, ",") {
		v = strings.TrimSpace(v)
		cfg := core.DefaultConfig()
		if err := p.apply(&cfg, v); err != nil {
			fmt.Fprintf(os.Stderr, "sweep: value %q: %v\n", v, err)
			os.Exit(2)
		}
		pf, err := core.New(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep: value %q: %v\n", v, err)
			os.Exit(2)
		}
		res, err := sim.Run(tr, pf, machine)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		m := pf.Metrics()
		tb.AddRow(v, res.IPC()/base.IPC(), res.IPC(), res.L1MPKI(), pf.Accuracy(),
			m.RealPrefetches, fmt.Sprintf("%dkB", cfg.StorageBytes()>>10))
	}
	tb.Render(os.Stdout)
}
