package main

import (
	"bytes"
	"strings"
	"testing"

	"semloc/internal/harness"
)

// sweepOut runs the sweep CLI and returns (stdout, exit code).
func sweepOut(t *testing.T, args ...string) (string, int) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code := run(args, &out, &errBuf)
	return out.String(), code
}

// TestSweepParallelGolden is the CLI-level determinism check: the rendered
// sweep table must be byte-identical at -parallel 1 and -parallel 8.
func TestSweepParallelGolden(t *testing.T) {
	args := []string{"-workload", "list", "-param", "epsilon",
		"-values", "0,0.1,0.2", "-scale", "0.05", "-q"}
	seq, code := sweepOut(t, append([]string{"-parallel", "1"}, args...)...)
	if code != harness.ExitOK {
		t.Fatalf("sequential sweep exited %d:\n%s", code, seq)
	}
	par, code := sweepOut(t, append([]string{"-parallel", "8"}, args...)...)
	if code != harness.ExitOK {
		t.Fatalf("parallel sweep exited %d:\n%s", code, par)
	}
	if seq != par {
		t.Errorf("sweep table differs between -parallel 1 and 8:\n--- seq ---\n%s\n--- par ---\n%s", seq, par)
	}
	for _, want := range []string{"epsilon", "speedup", "0.1"} {
		if !strings.Contains(seq, want) {
			t.Errorf("sweep table missing %q:\n%s", want, seq)
		}
	}
}

func TestSweepUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-param", "bogus", "-values", "1"},
		{"-param", "epsilon"},                  // missing -values
		{"-param", "epsilon", "-values", "zz"}, // unparsable value
		{"-param", "epsilon", "-values", "0.1", "-workload", "no-such"},
		{"-no-such-flag"},
	}
	for _, args := range cases {
		if _, code := sweepOut(t, append(args, "-q")...); code != harness.ExitUsage {
			t.Errorf("sweep %v exited %d, want %d", args, code, harness.ExitUsage)
		}
	}
}

// TestSweepTimeoutExitsRunFailed: exceeding -timeout is a run failure
// (exit 1), not a cancellation (exit 3).
func TestSweepTimeoutExitsRunFailed(t *testing.T) {
	out, code := sweepOut(t, "-workload", "list", "-param", "epsilon",
		"-values", "0,0.1", "-scale", "0.05", "-timeout", "1ns", "-q")
	if code != harness.ExitRunFailed {
		t.Fatalf("-timeout 1ns exited %d, want %d\n%s", code, harness.ExitRunFailed, out)
	}
}

func TestSweepListParams(t *testing.T) {
	out, code := sweepOut(t, "-params")
	if code != harness.ExitOK {
		t.Fatalf("-params exited %d", code)
	}
	for _, p := range []string{"epsilon", "maxdegree", "policy"} {
		if !strings.Contains(out, p) {
			t.Errorf("-params output missing %q", p)
		}
	}
}
