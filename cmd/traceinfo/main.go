// Command traceinfo summarizes a binary trace file produced by tracegen:
// record counts, instruction mix, dependency density, hint coverage, and
// optionally a per-record dump of a window.
//
// Usage:
//
//	traceinfo file.trace
//	traceinfo -reuse file.trace           # stack-distance profile
//	traceinfo -dump 100 -at 5000 file.trace
//
// Exit codes: 0 ok, 1 unreadable or invalid trace, 2 usage error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"semloc/internal/cache"
	"semloc/internal/memmodel"
	"semloc/internal/reuse"
	"semloc/internal/stats"
	"semloc/internal/trace"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("traceinfo", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dump = fs.Int("dump", 0, "dump this many records")
		at   = fs.Int("at", 0, "start dumping at this record index")
		doRe = fs.Bool("reuse", false, "print the LRU stack-distance profile and implied miss ratios")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: traceinfo [-dump N -at I] file.trace")
		return 2
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "traceinfo:", err)
		return 1
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		fmt.Fprintln(stderr, "traceinfo:", err)
		return 1
	}
	if err := tr.Validate(); err != nil {
		fmt.Fprintln(stderr, "traceinfo: trace fails validation:", err)
		return 1
	}
	st := tr.ComputeStats()
	tb := stats.NewTable("trace "+tr.Name, "metric", "value")
	tb.AddRow("records", st.Records)
	tb.AddRow("instructions", st.Instructions)
	tb.AddRow("loads", st.Loads)
	tb.AddRow("stores", st.Stores)
	tb.AddRow("branches", st.Branches)
	tb.AddRow("dependent loads", fmt.Sprintf("%d (%.1f%% of loads)", st.Dependent, pct(st.Dependent, st.Loads)))
	tb.AddRow("hinted accesses", fmt.Sprintf("%d (%.1f%% of memory ops)", st.Hinted, pct(st.Hinted, st.Loads+st.Stores)))
	tb.AddRow("warmup marker at", st.WarmupIndex)
	tb.Render(stdout)

	if *doRe {
		prof := reuse.Analyze(tr, 1<<20)
		fmt.Fprintln(stdout)
		rt := stats.NewTable("reuse profile", "metric", "value")
		rt.AddRow("profiled accesses", prof.Accesses)
		rt.AddRow("cold (first-touch)", prof.Cold)
		rt.AddRow("median reuse distance", prof.Distances.Percentile(0.5))
		rt.AddRow("p90 reuse distance", prof.Distances.Percentile(0.9))
		rt.AddRow("working set (99% of reuses)", fmt.Sprintf("%d lines (%d kB)",
			prof.WorkingSetLines(0.99), prof.WorkingSetLines(0.99)*memmodel.LineSize>>10))
		cfg := cache.DefaultConfig()
		rt.AddRow("implied fully-assoc L1 miss ratio", fmt.Sprintf("%.4f", prof.MissRatio(cfg.L1.Size/memmodel.LineSize)))
		rt.AddRow("implied fully-assoc L2 miss ratio", fmt.Sprintf("%.4f", prof.MissRatio(cfg.L2.Size/memmodel.LineSize)))
		rt.Render(stdout)
	}

	if *dump > 0 {
		fmt.Fprintln(stdout)
		end := *at + *dump
		if end > len(tr.Records) {
			end = len(tr.Records)
		}
		for i := *at; i < end; i++ {
			r := &tr.Records[i]
			switch r.Kind {
			case trace.KindCompute:
				fmt.Fprintf(stdout, "%8d  compute x%d\n", i, r.Count)
			case trace.KindBranch:
				fmt.Fprintf(stdout, "%8d  branch pc=%#x taken=%v\n", i, r.PC, r.Taken)
			case trace.KindLoad, trace.KindStore:
				dep := ""
				if r.Dep != trace.NoDep {
					dep = fmt.Sprintf(" dep=%d", r.Dep)
				}
				hint := ""
				if r.Hints.Valid {
					hint = fmt.Sprintf(" [type=%d linkoff=%d %s]", r.Hints.TypeID, r.Hints.LinkOffset, r.Hints.RefForm)
				}
				fmt.Fprintf(stdout, "%8d  %-5s pc=%#x addr=%v size=%d%s%s\n", i, r.Kind, r.PC, r.Addr, r.Size, dep, hint)
			case trace.KindWarmupEnd:
				fmt.Fprintf(stdout, "%8d  warmup-end\n", i)
			}
		}
	}
	return 0
}

func pct(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
