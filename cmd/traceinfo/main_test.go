package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"semloc/internal/trace"
	"semloc/internal/workloads"
)

// writeTestTrace generates a tiny workload trace file for the CLI to read.
func writeTestTrace(t *testing.T) string {
	t.Helper()
	w, err := workloads.ByName("list")
	if err != nil {
		t.Fatal(err)
	}
	tr := w.Generate(workloads.GenConfig{Scale: 0.02, Seed: 1})
	path := filepath.Join(t.TempDir(), "list.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Write(f, tr); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestTraceinfoSummary checks the summary table over a generated trace,
// including the -reuse and -dump extensions.
func TestTraceinfoSummary(t *testing.T) {
	path := writeTestTrace(t)
	var out, errBuf bytes.Buffer
	if code := run([]string{"-reuse", "-dump", "5", path}, &out, &errBuf); code != 0 {
		t.Fatalf("traceinfo exited %d: %s", code, errBuf.String())
	}
	s := out.String()
	for _, want := range []string{
		"trace list", "records", "instructions", "loads", "stores",
		"dependent loads", "warmup marker at",
		"reuse profile", "working set",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
	// -dump 5 prints five indexed record lines.
	if !strings.Contains(s, "       0  ") {
		t.Errorf("dump window missing record 0:\n%s", s)
	}
}

func TestTraceinfoExitCodes(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{}, &out, &errBuf); code != 2 {
		t.Errorf("no args exited %d, want 2", code)
	}
	if code := run([]string{"a.trace", "b.trace"}, &out, &errBuf); code != 2 {
		t.Errorf("two args exited %d, want 2", code)
	}
	if code := run([]string{filepath.Join(t.TempDir(), "missing.trace")}, &out, &errBuf); code != 1 {
		t.Errorf("missing file exited %d, want 1", code)
	}
	// A present but malformed file must fail cleanly, not panic.
	bad := filepath.Join(t.TempDir(), "bad.trace")
	if err := os.WriteFile(bad, []byte("not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{bad}, &out, &errBuf); code != 1 {
		t.Errorf("malformed file exited %d, want 1", code)
	}
}
