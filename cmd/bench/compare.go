package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Regression thresholds for -compare. Wall-clock per-access cost gets 10%
// of headroom (single-run timings jitter); allocation counts are nearly
// deterministic, so any real per-access increase is treated as a leak —
// allocTol only absorbs float division noise and stray GC bookkeeping.
const (
	nsRegressionFrac = 0.10
	allocTol         = 0.01
)

// Delta is one cell's old-vs-new comparison.
type Delta struct {
	Workload   string
	Prefetcher string
	OldNS      float64
	NewNS      float64
	NSFrac     float64 // (new-old)/old
	OldAllocs  float64
	NewAllocs  float64
	Regressed  bool
	Reason     string
}

// loadReport parses a BENCH_<n>.json file. Parsing is lenient about
// missing newer fields (older baselines predate them); it only requires
// well-formed JSON with entries.
func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	if len(rep.Entries) == 0 {
		return nil, fmt.Errorf("bench: %s holds no entries", path)
	}
	return &rep, nil
}

// Compare diffs two reports cell by cell over their shared matrix. A cell
// regresses when ns/access grows more than nsRegressionFrac or
// allocs/access grows beyond allocTol. Cells present in only one report
// are ignored (the matrix is allowed to evolve); an empty intersection is
// an error, since "nothing compared" must not read as "no regressions".
func Compare(oldRep, newRep *Report) ([]Delta, error) {
	oldBy := make(map[string]Entry, len(oldRep.Entries))
	for _, e := range oldRep.Entries {
		oldBy[e.Workload+"|"+e.Prefetcher] = e
	}
	var deltas []Delta
	for _, n := range newRep.Entries {
		o, ok := oldBy[n.Workload+"|"+n.Prefetcher]
		if !ok || o.NSPerAccess <= 0 {
			continue
		}
		d := Delta{
			Workload:   n.Workload,
			Prefetcher: n.Prefetcher,
			OldNS:      o.NSPerAccess,
			NewNS:      n.NSPerAccess,
			NSFrac:     (n.NSPerAccess - o.NSPerAccess) / o.NSPerAccess,
			OldAllocs:  o.AllocsPerAccess,
			NewAllocs:  n.AllocsPerAccess,
		}
		switch {
		case d.NSFrac > nsRegressionFrac:
			d.Regressed = true
			d.Reason = fmt.Sprintf("ns/access +%.1f%% (limit %.0f%%)", d.NSFrac*100, nsRegressionFrac*100)
		case d.NewAllocs > d.OldAllocs+allocTol:
			d.Regressed = true
			d.Reason = fmt.Sprintf("allocs/access %.4f -> %.4f", d.OldAllocs, d.NewAllocs)
		}
		deltas = append(deltas, d)
	}
	if len(deltas) == 0 {
		return nil, fmt.Errorf("bench: reports share no matrix cells; nothing to compare")
	}
	sort.Slice(deltas, func(i, j int) bool {
		if deltas[i].Workload != deltas[j].Workload {
			return deltas[i].Workload < deltas[j].Workload
		}
		return deltas[i].Prefetcher < deltas[j].Prefetcher
	})
	return deltas, nil
}

// renderCompare prints the comparison table and returns the number of
// regressed cells.
func renderCompare(w io.Writer, oldPath, newPath string, deltas []Delta) int {
	fmt.Fprintf(w, "bench compare: %s -> %s\n", oldPath, newPath)
	fmt.Fprintf(w, "%-16s %-10s %12s %12s %8s  %s\n",
		"workload", "prefetcher", "old ns/acc", "new ns/acc", "delta", "verdict")
	regressed := 0
	for _, d := range deltas {
		verdict := "ok"
		if d.Regressed {
			verdict = "REGRESSION: " + d.Reason
			regressed++
		}
		fmt.Fprintf(w, "%-16s %-10s %12.2f %12.2f %+7.1f%%  %s\n",
			d.Workload, d.Prefetcher, d.OldNS, d.NewNS, d.NSFrac*100, verdict)
	}
	if regressed > 0 {
		fmt.Fprintf(w, "bench compare: %d/%d cells regressed\n", regressed, len(deltas))
	} else {
		fmt.Fprintf(w, "bench compare: no regressions across %d cells\n", len(deltas))
	}
	return regressed
}
