package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestQuickMatrixReport runs the make-check smoke matrix end to end (at an
// even smaller scale to keep the test fast) and checks the written report
// is well-formed and validates.
func TestQuickMatrixReport(t *testing.T) {
	m := QuickMatrix()
	m.Scale = 0.02
	rep, err := Run(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Validate(m); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := WriteAndVerify(rep, m, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Entries) != len(m.Workloads)*len(m.Prefetchers) {
		t.Fatalf("report has %d entries, want %d", len(back.Entries), len(m.Workloads)*len(m.Prefetchers))
	}
}

// TestValidateRejectsMalformed covers the failure paths make check relies
// on: missing entries, zero work, bad schema.
func TestValidateRejectsMalformed(t *testing.T) {
	m := Matrix{Workloads: []string{"list"}, Prefetchers: []string{"none"}}
	good := Report{
		Schema:      1,
		Entries:     []Entry{{Workload: "list", Prefetcher: "none", Accesses: 10, WallNS: 5, NSPerAccess: 0.5, IPC: 1}},
		TotalWallNS: 5,
	}
	if err := good.Validate(m); err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}
	bad := good
	bad.Schema = 2
	if err := bad.Validate(m); err == nil {
		t.Error("schema 2 accepted")
	}
	bad = good
	bad.Entries = nil
	if err := bad.Validate(m); err == nil {
		t.Error("empty entry list accepted")
	}
	bad = good
	bad.Entries = []Entry{{Workload: "list", Prefetcher: "none"}}
	if err := bad.Validate(m); err == nil {
		t.Error("zero-work entry accepted")
	}
}
