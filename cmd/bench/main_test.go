package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestQuickMatrixReport runs the make-check smoke matrix end to end (at an
// even smaller scale to keep the test fast) and checks the written report
// is well-formed and validates.
func TestQuickMatrixReport(t *testing.T) {
	m := QuickMatrix()
	m.Scale = 0.02
	// Two timed passes exercise the min-of-K path: each pass re-simulates
	// on a fresh runner and must reproduce the warm pass's IPC exactly.
	m.TimedPasses = 2
	rep, err := Run(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TimedPasses != 2 {
		t.Fatalf("report records %d timed passes, want 2", rep.TimedPasses)
	}
	if err := rep.Validate(m); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := WriteAndVerify(rep, m, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Entries) != len(m.Workloads)*len(m.Prefetchers) {
		t.Fatalf("report has %d entries, want %d", len(back.Entries), len(m.Workloads)*len(m.Prefetchers))
	}
}

// TestValidateRejectsMalformed covers the failure paths make check relies
// on: missing entries, zero work, bad schema.
func TestValidateRejectsMalformed(t *testing.T) {
	m := Matrix{Workloads: []string{"list"}, Prefetchers: []string{"none"}}
	good := Report{
		Schema:           1,
		TimedParallelism: 1,
		TimedPasses:      1,
		Entries:          []Entry{{Workload: "list", Prefetcher: "none", Accesses: 10, WallNS: 5, NSPerAccess: 0.5, IPC: 1}},
		TotalWallNS:      5,
	}
	if err := good.Validate(m); err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}
	bad := good
	bad.Schema = 2
	if err := bad.Validate(m); err == nil {
		t.Error("schema 2 accepted")
	}
	bad = good
	bad.Entries = nil
	if err := bad.Validate(m); err == nil {
		t.Error("empty entry list accepted")
	}
	bad = good
	bad.Entries = []Entry{{Workload: "list", Prefetcher: "none"}}
	if err := bad.Validate(m); err == nil {
		t.Error("zero-work entry accepted")
	}
	bad = good
	bad.TimedParallelism = 4
	if err := bad.Validate(m); err == nil {
		t.Error("parallel timed pass accepted; timings are only valid sequentially")
	}
	bad = good
	bad.TimedPasses = 0
	if err := bad.Validate(m); err == nil {
		t.Error("report without a timed pass accepted")
	}
}

// benchReport builds a minimal report for compare tests.
func benchReport(cells map[string][2]float64) *Report {
	rep := &Report{Schema: 1, TimedParallelism: 1}
	for key, v := range cells {
		var wl, pf string
		for i := 0; i < len(key); i++ {
			if key[i] == '|' {
				wl, pf = key[:i], key[i+1:]
			}
		}
		rep.Entries = append(rep.Entries, Entry{
			Workload: wl, Prefetcher: pf, Accesses: 1000, WallNS: int64(v[0] * 1000),
			NSPerAccess: v[0], AllocsPerAccess: v[1], IPC: 1,
		})
	}
	return rep
}

// TestCompareRegressionGate pins the -compare thresholds: >10% ns/access
// or any real allocs/access growth regresses; anything within tolerance
// passes, including improvements.
func TestCompareRegressionGate(t *testing.T) {
	oldRep := benchReport(map[string][2]float64{
		"list|none":    {100, 0.001},
		"list|context": {400, 0.001},
		"mcf|context":  {500, 0.001},
	})
	cases := []struct {
		name      string
		cells     map[string][2]float64
		regressed int
	}{
		{"identical", map[string][2]float64{
			"list|none": {100, 0.001}, "list|context": {400, 0.001}, "mcf|context": {500, 0.001}}, 0},
		{"within-tolerance", map[string][2]float64{
			"list|none": {109, 0.001}, "list|context": {430, 0.002}, "mcf|context": {450, 0.001}}, 0},
		{"ns-regression", map[string][2]float64{
			"list|none": {100, 0.001}, "list|context": {450, 0.001}, "mcf|context": {500, 0.001}}, 1},
		{"alloc-regression", map[string][2]float64{
			"list|none": {100, 1.5}, "list|context": {400, 0.001}, "mcf|context": {500, 0.001}}, 1},
		{"both-cells", map[string][2]float64{
			"list|none": {120, 0.001}, "list|context": {400, 2.0}, "mcf|context": {500, 0.001}}, 2},
		{"matrix-evolved", map[string][2]float64{
			"list|none": {100, 0.001}, "new|cell": {999, 9}}, 0},
	}
	for _, tc := range cases {
		deltas, err := Compare(oldRep, benchReport(tc.cells))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		got := 0
		for _, d := range deltas {
			if d.Regressed {
				got++
			}
		}
		if got != tc.regressed {
			t.Errorf("%s: %d regressions, want %d (%+v)", tc.name, got, tc.regressed, deltas)
		}
	}
	// No shared cells: must be an error, not a silent pass.
	if _, err := Compare(oldRep, benchReport(map[string][2]float64{"x|y": {1, 0}})); err == nil {
		t.Error("disjoint reports compared without error")
	}
}
