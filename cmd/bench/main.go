// Command bench runs the repository's continuous performance benchmark: a
// fixed (workload, prefetcher) matrix simulated under internal/exp.Runner,
// timed end to end, and written as a machine-readable JSON report so every
// PR leaves a perf trajectory behind (BENCH_<n>.json at the repo root; see
// DESIGN.md, "Hot path & benchmarking", for the schema).
//
// Usage:
//
//	bench                       # full matrix, writes BENCH_<n>.json
//	bench -quick -out /tmp/b.json   # tiny smoke matrix (make check)
//	bench -scale 0.5 -n 3       # custom scale, bench sequence number 3
//	bench -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Progress and diagnostics go to stderr as structured logs (-q silences
// them; -v adds per-entry measurements).
//
// The report is validated after writing (re-read, re-parsed, sanity
// checked); a report that cannot be produced or fails validation exits
// non-zero. Exit codes follow the harness contract: 0 ok, 1 a run or the
// report failed, 2 usage error, 3 cancelled.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"semloc/internal/exp"
	"semloc/internal/harness"
	"semloc/internal/obs"
)

// benchSeq is the default sequence number of the report this source tree
// writes; bump it (or pass -n) in the PR that records a new baseline.
const benchSeq = 2

// Entry is one (workload, prefetcher) measurement.
type Entry struct {
	Workload   string `json:"workload"`
	Prefetcher string `json:"prefetcher"`
	// Accesses is the total demand accesses simulated (warm-up included —
	// the simulator pays for them, so the per-access costs below do too).
	Accesses uint64 `json:"accesses"`
	// Records is the trace length in records.
	Records int `json:"records"`
	// WallNS is the end-to-end simulation wall time (trace generation
	// excluded; traces are pre-generated and memoized).
	WallNS int64 `json:"wall_ns"`
	// NSPerAccess is WallNS / Accesses.
	NSPerAccess float64 `json:"ns_per_access"`
	// AllocsPerAccess is heap allocations per demand access across the run
	// (runtime.MemStats.Mallocs delta); the hot-path target is ~0.
	AllocsPerAccess float64 `json:"allocs_per_access"`
	// IPC and Speedup (over the "none" baseline, when present) record the
	// simulated outcome so a perf regression hunt can confirm behaviour
	// did not drift along with speed.
	IPC     float64 `json:"ipc"`
	Speedup float64 `json:"speedup,omitempty"`
}

// Report is the BENCH_<n>.json schema (version 1).
type Report struct {
	Bench       int     `json:"bench"`
	Schema      int     `json:"schema"`
	Quick       bool    `json:"quick,omitempty"`
	Scale       float64 `json:"scale"`
	Seed        uint64  `json:"seed"`
	GoVersion   string  `json:"go"`
	GOOS        string  `json:"goos"`
	GOARCH      string  `json:"goarch"`
	Entries     []Entry `json:"entries"`
	TotalWallNS int64   `json:"total_wall_ns"`
}

// Matrix configures a benchmark run.
type Matrix struct {
	Workloads   []string
	Prefetchers []string
	Scale       float64
	Seed        uint64
	Bench       int
	Quick       bool
}

// DefaultMatrix is the fixed matrix the perf trajectory tracks: the
// flagship linked workloads plus a sequential control, against the
// baseline, a spatial competitor, a temporal competitor, and the paper's
// context prefetcher.
func DefaultMatrix() Matrix {
	return Matrix{
		Workloads:   []string{"list", "mcf", "array", "graph500-list"},
		Prefetchers: []string{"none", "sms", "ghb-gdc", "context"},
		Scale:       0.25,
		Seed:        1,
		Bench:       benchSeq,
	}
}

// QuickMatrix is the make-check smoke: small enough to finish in seconds,
// still covering the context prefetcher's full hot path.
func QuickMatrix() Matrix {
	return Matrix{
		Workloads:   []string{"list", "array"},
		Prefetchers: []string{"none", "context"},
		Scale:       0.05,
		Seed:        1,
		Bench:       benchSeq,
		Quick:       true,
	}
}

// Run executes the matrix sequentially (Parallelism 1: wall times must not
// contend) and assembles the report.
func Run(ctx context.Context, m Matrix) (*Report, error) {
	opts := exp.DefaultOptions()
	opts.Scale = m.Scale
	opts.Seed = m.Seed
	opts.Parallelism = 1
	r := exp.NewRunnerContext(ctx, opts)

	rep := &Report{
		Bench:     m.Bench,
		Schema:    1,
		Quick:     m.Quick,
		Scale:     m.Scale,
		Seed:      m.Seed,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	var ms runtime.MemStats
	for _, wl := range m.Workloads {
		// Pre-generate (and memoize) the trace so generation time never
		// pollutes simulation wall time.
		tr, err := r.Trace(wl)
		if err != nil {
			return nil, err
		}
		st := tr.ComputeStats()
		accesses := st.Loads + st.Stores
		var baseIPC float64
		for _, pf := range m.Prefetchers {
			runtime.ReadMemStats(&ms)
			mallocs := ms.Mallocs
			start := time.Now()
			res, err := r.Result(wl, pf)
			wall := time.Since(start)
			if err != nil {
				return nil, err
			}
			runtime.ReadMemStats(&ms)
			e := Entry{
				Workload:   wl,
				Prefetcher: pf,
				Accesses:   accesses,
				Records:    st.Records,
				WallNS:     wall.Nanoseconds(),
				IPC:        res.IPC(),
			}
			if accesses > 0 {
				e.NSPerAccess = float64(e.WallNS) / float64(accesses)
				e.AllocsPerAccess = float64(ms.Mallocs-mallocs) / float64(accesses)
			}
			if pf == "none" {
				baseIPC = res.IPC()
			} else if baseIPC > 0 {
				e.Speedup = res.IPC() / baseIPC
			}
			rep.Entries = append(rep.Entries, e)
			rep.TotalWallNS += e.WallNS
		}
	}
	return rep, nil
}

// Validate sanity-checks a report the way make check needs: every matrix
// cell present with positive work and time.
func (r *Report) Validate(m Matrix) error {
	if r.Schema != 1 {
		return fmt.Errorf("bench: unknown schema %d", r.Schema)
	}
	if want := len(m.Workloads) * len(m.Prefetchers); len(r.Entries) != want {
		return fmt.Errorf("bench: report holds %d entries, want %d", len(r.Entries), want)
	}
	for _, e := range r.Entries {
		if e.Workload == "" || e.Prefetcher == "" {
			return fmt.Errorf("bench: entry with empty identity: %+v", e)
		}
		if e.Accesses == 0 || e.WallNS <= 0 || e.NSPerAccess <= 0 {
			return fmt.Errorf("bench: %s/%s measured no work: %+v", e.Workload, e.Prefetcher, e)
		}
		if e.IPC <= 0 {
			return fmt.Errorf("bench: %s/%s has non-positive IPC", e.Workload, e.Prefetcher)
		}
	}
	if r.TotalWallNS <= 0 {
		return fmt.Errorf("bench: non-positive total wall time")
	}
	return nil
}

// WriteAndVerify marshals the report to path, then reads it back and
// re-validates, so a truncated or malformed file fails loudly.
func WriteAndVerify(rep *Report, m Matrix, path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	read, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("bench: re-reading report: %w", err)
	}
	var check Report
	if err := json.Unmarshal(read, &check); err != nil {
		return fmt.Errorf("bench: report at %s is not well-formed JSON: %w", path, err)
	}
	return check.Validate(m)
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func main() { os.Exit(run()) }

func run() int {
	var (
		quick   = flag.Bool("quick", false, "smoke mode: tiny matrix and scale (used by make check)")
		scale   = flag.Float64("scale", 0, "workload scale factor (default: matrix default)")
		seed    = flag.Uint64("seed", 1, "workload seed")
		n       = flag.Int("n", benchSeq, "bench sequence number (names the default output file)")
		out     = flag.String("out", "", "output path (default BENCH_<n>.json)")
		wls     = flag.String("workloads", "", "comma-separated workloads (default: fixed matrix)")
		pfs     = flag.String("prefetchers", "", "comma-separated prefetchers (default: fixed matrix)")
		verbose = flag.Bool("v", false, "log per-entry measurements")
		quiet   = flag.Bool("q", false, "suppress progress logging (errors still print)")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	logger := obs.NewLogger(os.Stderr, "bench", *quiet, *verbose)
	if flag.NArg() > 0 {
		logger.Error("unexpected arguments", "args", flag.Args())
		return harness.ExitUsage
	}

	stopProf, err := obs.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		logger.Error("starting profiles", "err", err)
		return harness.ExitRunFailed
	}
	defer func() {
		if err := stopProf(); err != nil {
			logger.Error("writing profiles", "err", err)
		}
	}()

	m := DefaultMatrix()
	if *quick {
		m = QuickMatrix()
	}
	m.Bench = *n
	m.Seed = *seed
	if *scale > 0 {
		m.Scale = *scale
	}
	if *wls != "" {
		m.Workloads = splitList(*wls)
	}
	if *pfs != "" {
		m.Prefetchers = splitList(*pfs)
	}
	if len(m.Workloads) == 0 || len(m.Prefetchers) == 0 {
		logger.Error("empty workload or prefetcher matrix")
		return harness.ExitUsage
	}
	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%d.json", m.Bench)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	logger.Info("starting", "workloads", len(m.Workloads), "prefetchers", len(m.Prefetchers),
		"scale", m.Scale, "out", path)
	rep, err := Run(ctx, m)
	if err != nil {
		if harness.IsCancelled(err) || ctx.Err() != nil {
			logger.Error("cancelled", "err", err)
			return harness.ExitCancelled
		}
		logger.Error("benchmark failed", "err", err)
		return harness.ExitRunFailed
	}
	for _, e := range rep.Entries {
		logger.Debug("entry measured", "workload", e.Workload, "prefetcher", e.Prefetcher,
			"ns_per_access", e.NSPerAccess, "allocs_per_access", e.AllocsPerAccess,
			"duration", time.Duration(e.WallNS).Round(time.Millisecond))
	}
	if err := WriteAndVerify(rep, m, path); err != nil {
		logger.Error("report failed verification", "err", err)
		return harness.ExitRunFailed
	}
	fmt.Printf("bench: wrote %s (%d entries, total sim wall %v)\n",
		path, len(rep.Entries), time.Duration(rep.TotalWallNS).Round(time.Millisecond))
	return harness.ExitOK
}
