// Command bench runs the repository's continuous performance benchmark: a
// fixed (workload, prefetcher) matrix simulated under internal/exp.Runner,
// timed end to end, and written as a machine-readable JSON report so every
// PR leaves a perf trajectory behind (BENCH_<n>.json at the repo root; see
// DESIGN.md, "Hot path & benchmarking", for the schema).
//
// Usage:
//
//	bench                       # full matrix, writes BENCH_<n>.json
//	bench -quick -out /tmp/b.json   # tiny smoke matrix (make check)
//	bench -scale 0.5 -n 4       # custom scale, bench sequence number 4
//	bench -compare BENCH_2.json BENCH_3.json   # regression gate
//	bench -cpuprofile cpu.pprof -memprofile mem.pprof
//
// The benchmark runs a parallel warm-up pass plus K timed passes. The
// warm-up (-parallel, default GOMAXPROCS) decodes every trace into a
// shared cache and runs the whole matrix once, verifying results; each
// timed pass then re-runs every cell strictly sequentially (timings must
// not contend) on the shared traces and requires each cell's IPC to equal
// the warm pass's exactly — the engine's determinism contract, checked on
// every benchmark. A cell's reported wall time is the minimum over the
// timed passes (-passes, default 5): on a shared box the minimum estimates
// the noise-free cost, while means and single shots fold scheduler
// interference into the trajectory. Timed numbers always come from a
// parallelism-1 schedule; the report records both parallelism levels and
// the pass count.
//
// -compare exits non-zero when the new report regresses the old by more
// than 10% ns/access on any shared cell, or allocates measurably more per
// access (the hot path's allocs/access target is ~0, so any real increase
// is a leak).
//
// Progress and diagnostics go to stderr as structured logs (-q silences
// them; -v adds per-entry measurements). -listen serves live metrics
// (Prometheus /metrics, expvar, pprof) for the duration of the benchmark;
// -spans records a Perfetto-loadable span trace of both passes.
//
// The report is validated after writing (re-read, re-parsed, sanity
// checked); a report that cannot be produced or fails validation exits
// non-zero. Exit codes follow the harness contract: 0 ok, 1 a run or the
// report failed (or -compare found a regression), 2 usage error, 3
// cancelled.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"semloc/internal/exp"
	"semloc/internal/harness"
	"semloc/internal/obs"
)

// benchSeq is the default sequence number of the report this source tree
// writes; bump it (or pass -n) in the PR that records a new baseline.
const benchSeq = 4

// Entry is one (workload, prefetcher) measurement.
type Entry struct {
	Workload   string `json:"workload"`
	Prefetcher string `json:"prefetcher"`
	// Accesses is the total demand accesses simulated (warm-up included —
	// the simulator pays for them, so the per-access costs below do too).
	Accesses uint64 `json:"accesses"`
	// Records is the trace length in records.
	Records int `json:"records"`
	// WallNS is the end-to-end simulation wall time (trace generation
	// excluded; traces are pre-generated and memoized).
	WallNS int64 `json:"wall_ns"`
	// NSPerAccess is WallNS / Accesses.
	NSPerAccess float64 `json:"ns_per_access"`
	// AllocsPerAccess is heap allocations per demand access across the run
	// (runtime.MemStats.Mallocs delta); the hot-path target is ~0.
	AllocsPerAccess float64 `json:"allocs_per_access"`
	// IPC and Speedup (over the "none" baseline, when present) record the
	// simulated outcome so a perf regression hunt can confirm behaviour
	// did not drift along with speed.
	IPC     float64 `json:"ipc"`
	Speedup float64 `json:"speedup,omitempty"`
}

// Report is the BENCH_<n>.json schema (version 1).
type Report struct {
	Bench     int     `json:"bench"`
	Schema    int     `json:"schema"`
	Quick     bool    `json:"quick,omitempty"`
	Scale     float64 `json:"scale"`
	Seed      uint64  `json:"seed"`
	GoVersion string  `json:"go"`
	GOOS      string  `json:"goos"`
	GOARCH    string  `json:"goarch"`
	// WarmParallelism is the worker count of the (untimed) warm-up pass
	// that decoded traces and verified determinism.
	WarmParallelism int `json:"warm_parallelism"`
	// TimedParallelism is the worker count of the timed passes. Always 1:
	// wall-clock numbers from contending simulations would be noise, so
	// Validate rejects anything else.
	TimedParallelism int `json:"timed_parallelism"`
	// TimedPasses is how many sequential timed passes ran; every entry's
	// WallNS is the minimum over them. Reports written before the field
	// existed (BENCH_1..3) carry an implicit single pass.
	TimedPasses int     `json:"timed_passes,omitempty"`
	Entries     []Entry `json:"entries"`
	TotalWallNS int64   `json:"total_wall_ns"`
}

// Matrix configures a benchmark run.
type Matrix struct {
	Workloads   []string
	Prefetchers []string
	Scale       float64
	Seed        uint64
	Bench       int
	Quick       bool
	// WarmParallel bounds the warm-up pass's workers (0 = GOMAXPROCS).
	// The timed passes are always sequential regardless.
	WarmParallel int
	// TimedPasses is how many sequential timed passes to run per cell; the
	// reported wall time is the per-cell minimum. 0 means one pass.
	TimedPasses int
	// Metrics and Spans, when non-nil, attach live observability to both
	// passes (the -listen endpoint and the -spans trace file). The timed
	// pass's instrumentation is cell-granular — two clock reads per cell —
	// so it cannot perturb the per-access measurements.
	Metrics *obs.Registry
	Spans   *obs.SpanRecorder
}

// DefaultMatrix is the fixed matrix the perf trajectory tracks: the
// flagship linked workloads plus a sequential control, against the
// baseline, a spatial competitor, a temporal competitor, and the paper's
// context prefetcher.
func DefaultMatrix() Matrix {
	return Matrix{
		Workloads:   []string{"list", "mcf", "array", "graph500-list"},
		Prefetchers: []string{"none", "sms", "ghb-gdc", "context"},
		Scale:       0.25,
		Seed:        1,
		Bench:       benchSeq,
		TimedPasses: 5,
	}
}

// QuickMatrix is the make-check smoke: small enough to finish in seconds,
// still covering the context prefetcher's full hot path.
func QuickMatrix() Matrix {
	return Matrix{
		Workloads:   []string{"list", "array"},
		Prefetchers: []string{"none", "context"},
		Scale:       0.05,
		Seed:        1,
		Bench:       benchSeq,
		Quick:       true,
	}
}

// Run executes the matrix — a parallel untimed warm-up, then K sequential
// timed passes whose per-cell minimum becomes the report — and assembles
// the report.
//
// The warm-up runner and each timed pass's runner share one TraceCache
// (traces decode once) but deliberately NOT a result memo: sharing results
// would let a timed pass return the warm pass's (or an earlier pass's)
// memoized values in ~0ns and the benchmark would measure nothing. Each
// pass therefore gets a fresh runner that re-simulates every cell, and Run
// cross-checks every pass's IPC against the warm pass's, exactly — any
// divergence means a run depended on scheduling or on pass count, which
// the engine's determinism contract forbids.
func Run(ctx context.Context, m Matrix) (*Report, error) {
	warmPar := m.WarmParallel
	if warmPar <= 0 {
		warmPar = runtime.GOMAXPROCS(0)
	}

	warmOpts := exp.DefaultOptions()
	warmOpts.Scale = m.Scale
	warmOpts.Seed = m.Seed
	warmOpts.Parallelism = warmPar
	warmOpts.Metrics = m.Metrics
	warmOpts.Spans = m.Spans
	warm := exp.NewRunnerContext(ctx, warmOpts)

	jobs := make([]exp.Job, 0, len(m.Workloads)*len(m.Prefetchers))
	for _, wl := range m.Workloads {
		for _, pf := range m.Prefetchers {
			jobs = append(jobs, exp.Job{Workload: wl, Prefetcher: pf})
		}
	}
	warmRes, err := warm.RunJobs(jobs)
	if err != nil {
		return nil, err
	}
	warmIPC := make(map[string]float64, len(jobs))
	for _, jr := range warmRes {
		if jr.Err != nil {
			return nil, jr.Err
		}
		warmIPC[jr.Job.Workload+"|"+jr.Job.Prefetcher] = jr.Result.IPC()
	}

	passes := m.TimedPasses
	if passes <= 0 {
		passes = 1
	}

	timedOpts := exp.DefaultOptions()
	timedOpts.Scale = m.Scale
	timedOpts.Seed = m.Seed
	timedOpts.Parallelism = 1
	timedOpts.Traces = warm.Traces()
	timedOpts.Metrics = m.Metrics
	timedOpts.Spans = m.Spans

	rep := &Report{
		Bench:            m.Bench,
		Schema:           1,
		Quick:            m.Quick,
		Scale:            m.Scale,
		Seed:             m.Seed,
		GoVersion:        runtime.Version(),
		GOOS:             runtime.GOOS,
		GOARCH:           runtime.GOARCH,
		WarmParallelism:  warmPar,
		TimedParallelism: 1,
		TimedPasses:      passes,
	}

	// best holds, per matrix cell, the fastest pass's measurement. Wall
	// time and the alloc count travel together so AllocsPerAccess always
	// describes the same run the wall number came from (the counts are
	// deterministic across passes anyway — each pass replays the identical
	// runner lifecycle — but pairing them keeps the entry self-consistent).
	type measurement struct {
		wallNS int64
		allocs uint64
	}
	best := make([]measurement, len(m.Workloads)*len(m.Prefetchers))
	var ms runtime.MemStats
	for pass := 0; pass < passes; pass++ {
		// A fresh runner per pass: no result memo survives to short-circuit
		// a measurement, and every pass replays the same pool-warming
		// sequence so passes are comparable cell for cell.
		r := exp.NewRunnerContext(ctx, timedOpts)
		// Collect the previous pass's garbage (and, before the first pass,
		// the warm-up's — trace generation allocates freely) so no GC debt
		// from setup is paid inside a timed cell.
		runtime.GC()
		cell := 0
		for _, wl := range m.Workloads {
			// A cache hit via the shared TraceCache: generation time cannot
			// pollute simulation wall time.
			if _, err := r.Trace(wl); err != nil {
				return nil, err
			}
			for _, pf := range m.Prefetchers {
				runtime.ReadMemStats(&ms)
				mallocs := ms.Mallocs
				start := time.Now()
				res, err := r.Result(wl, pf)
				wall := time.Since(start)
				if err != nil {
					return nil, err
				}
				runtime.ReadMemStats(&ms)
				if want := warmIPC[wl+"|"+pf]; res.IPC() != want {
					return nil, fmt.Errorf("bench: %s/%s: timed IPC %v != warm-pass IPC %v on pass %d; schedules diverged",
						wl, pf, res.IPC(), want, pass+1)
				}
				mm := measurement{wallNS: wall.Nanoseconds(), allocs: ms.Mallocs - mallocs}
				if pass == 0 || mm.wallNS < best[cell].wallNS {
					best[cell] = mm
				}
				cell++
			}
		}
	}

	cell := 0
	for _, wl := range m.Workloads {
		tr, err := warm.Trace(wl)
		if err != nil {
			return nil, err
		}
		st := tr.ComputeStats()
		accesses := st.Loads + st.Stores
		var baseIPC float64
		for _, pf := range m.Prefetchers {
			mm := best[cell]
			cell++
			ipc := warmIPC[wl+"|"+pf]
			e := Entry{
				Workload:   wl,
				Prefetcher: pf,
				Accesses:   accesses,
				Records:    st.Records,
				WallNS:     mm.wallNS,
				IPC:        ipc,
			}
			if accesses > 0 {
				e.NSPerAccess = float64(e.WallNS) / float64(accesses)
				e.AllocsPerAccess = float64(mm.allocs) / float64(accesses)
			}
			if pf == "none" {
				baseIPC = ipc
			} else if baseIPC > 0 {
				e.Speedup = ipc / baseIPC
			}
			rep.Entries = append(rep.Entries, e)
			rep.TotalWallNS += e.WallNS
		}
	}
	return rep, nil
}

// Validate sanity-checks a report the way make check needs: every matrix
// cell present with positive work and time.
func (r *Report) Validate(m Matrix) error {
	if r.Schema != 1 {
		return fmt.Errorf("bench: unknown schema %d", r.Schema)
	}
	if want := len(m.Workloads) * len(m.Prefetchers); len(r.Entries) != want {
		return fmt.Errorf("bench: report holds %d entries, want %d", len(r.Entries), want)
	}
	for _, e := range r.Entries {
		if e.Workload == "" || e.Prefetcher == "" {
			return fmt.Errorf("bench: entry with empty identity: %+v", e)
		}
		if e.Accesses == 0 || e.WallNS <= 0 || e.NSPerAccess <= 0 {
			return fmt.Errorf("bench: %s/%s measured no work: %+v", e.Workload, e.Prefetcher, e)
		}
		if e.IPC <= 0 {
			return fmt.Errorf("bench: %s/%s has non-positive IPC", e.Workload, e.Prefetcher)
		}
	}
	if r.TotalWallNS <= 0 {
		return fmt.Errorf("bench: non-positive total wall time")
	}
	if r.TimedParallelism != 1 {
		return fmt.Errorf("bench: timed pass ran at parallelism %d; timings are only valid sequentially", r.TimedParallelism)
	}
	if r.TimedPasses < 1 {
		return fmt.Errorf("bench: report records %d timed passes; at least one must have run", r.TimedPasses)
	}
	return nil
}

// WriteAndVerify marshals the report to path, then reads it back and
// re-validates, so a truncated or malformed file fails loudly.
func WriteAndVerify(rep *Report, m Matrix, path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	read, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("bench: re-reading report: %w", err)
	}
	var check Report
	if err := json.Unmarshal(read, &check); err != nil {
		return fmt.Errorf("bench: report at %s is not well-formed JSON: %w", path, err)
	}
	return check.Validate(m)
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func main() { os.Exit(run()) }

func run() int {
	var (
		quick    = flag.Bool("quick", false, "smoke mode: tiny matrix and scale (used by make check)")
		scale    = flag.Float64("scale", 0, "workload scale factor (default: matrix default)")
		seed     = flag.Uint64("seed", 1, "workload seed")
		n        = flag.Int("n", benchSeq, "bench sequence number (names the default output file)")
		out      = flag.String("out", "", "output path (default BENCH_<n>.json)")
		wls      = flag.String("workloads", "", "comma-separated workloads (default: fixed matrix)")
		pfs      = flag.String("prefetchers", "", "comma-separated prefetchers (default: fixed matrix)")
		parallel = flag.Int("parallel", 0, "warm-up pass workers (0 = GOMAXPROCS); the timed passes are always sequential")
		passes   = flag.Int("passes", 0, "timed passes per cell, reporting the minimum (0 = matrix default)")
		compare  = flag.Bool("compare", false, "compare two reports (old.json new.json) and exit 1 on regression")
		verbose  = flag.Bool("v", false, "log per-entry measurements")
		quiet    = flag.Bool("q", false, "suppress progress logging (errors still print)")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		listen     = flag.String("listen", "", "serve /metrics, /debug/vars and pprof on this address while the benchmark runs (empty host binds loopback)")
		spansPath  = flag.String("spans", "", "write a Chrome trace-event span file (Perfetto-loadable) here on exit")
	)
	flag.Parse()
	logger := obs.NewLogger(os.Stderr, "bench", *quiet, *verbose)
	if *compare {
		if flag.NArg() != 2 {
			logger.Error("-compare needs exactly two report paths (old new)", "args", flag.Args())
			return harness.ExitUsage
		}
		oldRep, err := loadReport(flag.Arg(0))
		if err != nil {
			logger.Error("loading old report", "err", err)
			return harness.ExitRunFailed
		}
		newRep, err := loadReport(flag.Arg(1))
		if err != nil {
			logger.Error("loading new report", "err", err)
			return harness.ExitRunFailed
		}
		deltas, err := Compare(oldRep, newRep)
		if err != nil {
			logger.Error("comparing reports", "err", err)
			return harness.ExitRunFailed
		}
		if renderCompare(os.Stdout, flag.Arg(0), flag.Arg(1), deltas) > 0 {
			return harness.ExitRunFailed
		}
		return harness.ExitOK
	}
	if flag.NArg() > 0 {
		logger.Error("unexpected arguments", "args", flag.Args())
		return harness.ExitUsage
	}

	stopProf, err := obs.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		logger.Error("starting profiles", "err", err)
		return harness.ExitRunFailed
	}
	defer func() {
		if err := stopProf(); err != nil {
			logger.Error("writing profiles", "err", err)
		}
	}()

	m := DefaultMatrix()
	if *quick {
		m = QuickMatrix()
	}
	m.Bench = *n
	m.Seed = *seed
	m.WarmParallel = *parallel
	if *passes > 0 {
		m.TimedPasses = *passes
	}
	if *scale > 0 {
		m.Scale = *scale
	}
	if *wls != "" {
		m.Workloads = splitList(*wls)
	}
	if *pfs != "" {
		m.Prefetchers = splitList(*pfs)
	}
	if len(m.Workloads) == 0 || len(m.Prefetchers) == 0 {
		logger.Error("empty workload or prefetcher matrix")
		return harness.ExitUsage
	}
	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%d.json", m.Bench)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	live, err := obs.StartLive(ctx, logger, *listen, *spansPath, 0)
	if err != nil {
		logger.Error("observability setup failed", "err", err)
		return harness.ExitUsage
	}
	defer live.Close()
	m.Metrics = live.Reg
	m.Spans = live.Spans
	live.Ready()

	logger.Info("starting", "workloads", len(m.Workloads), "prefetchers", len(m.Prefetchers),
		"scale", m.Scale, "out", path)
	rep, err := Run(ctx, m)
	if err != nil {
		if harness.IsCancelled(err) || ctx.Err() != nil {
			logger.Error("cancelled", "err", err)
			return harness.ExitCancelled
		}
		logger.Error("benchmark failed", "err", err)
		return harness.ExitRunFailed
	}
	for _, e := range rep.Entries {
		logger.Debug("entry measured", "workload", e.Workload, "prefetcher", e.Prefetcher,
			"ns_per_access", e.NSPerAccess, "allocs_per_access", e.AllocsPerAccess,
			"duration", time.Duration(e.WallNS).Round(time.Millisecond))
	}
	if err := WriteAndVerify(rep, m, path); err != nil {
		logger.Error("report failed verification", "err", err)
		return harness.ExitRunFailed
	}
	fmt.Printf("bench: wrote %s (%d entries, total sim wall %v)\n",
		path, len(rep.Entries), time.Duration(rep.TotalWallNS).Round(time.Millisecond))
	return harness.ExitOK
}
