// Command prefetchsim runs one workload under one or more prefetchers and
// prints the headline metrics (IPC, speedup vs no prefetching, MPKI,
// access categories).
//
// Usage:
//
//	prefetchsim -workload list [-prefetchers context,sms,none] [-scale 1] [-seed 1] [-v]
//	prefetchsim -workload list -config machine.json
//	prefetchsim -trace list.trace # replay a serialized trace (see tracegen)
//	prefetchsim -list             # list available workloads
//
// SIGINT/SIGTERM cancel in-flight simulations; the partial table is
// printed. Tables go to stdout; progress and diagnostics go to stderr as
// structured logs (-q silences them). -listen serves live metrics
// (Prometheus /metrics, expvar, pprof) while the runs execute. Exit codes:
// 0 all runs completed, 1 at least one run failed, 2 usage error, 3
// cancelled (see DESIGN.md, "Failure model").
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"semloc/internal/exp"
	"semloc/internal/harness"
	"semloc/internal/obs"
	"semloc/internal/prefetch"
	"semloc/internal/stats"
	"semloc/internal/trace"
	"semloc/internal/workloads"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		workload    = flag.String("workload", "", "workload name (see -list)")
		traceFile   = flag.String("trace", "", "replay a serialized trace instead of generating a workload")
		prefetchers = flag.String("prefetchers", "none,stride,ghb-gdc,ghb-pcdc,sms,markov,context", "comma-separated prefetcher names")
		scale       = flag.Float64("scale", 1, "workload scale factor")
		seed        = flag.Uint64("seed", 1, "workload seed")
		list        = flag.Bool("list", false, "list available workloads")
		verbose     = flag.Bool("v", false, "print access-category breakdown")
		configPath  = flag.String("config", "", "JSON machine/prefetcher config (see exp.FileConfig)")
		stall       = flag.Duration("stall", 0, "abort a run making no forward progress for this long (0 disables the watchdog)")
		quiet       = flag.Bool("q", false, "suppress progress logging (errors still print)")
		listen      = flag.String("listen", "", "serve /metrics, /debug/vars and pprof on this address while runs execute (empty host binds loopback)")
	)
	flag.Parse()
	logger := obs.NewLogger(os.Stderr, "prefetchsim", *quiet, false)

	if *list {
		tb := stats.NewTable("workloads (Table 3)", "name", "suite", "irregular", "description")
		for _, w := range workloads.All() {
			tb.AddRow(w.Name, w.Suite, w.Irregular, w.Description)
		}
		tb.Render(os.Stdout)
		return harness.ExitOK
	}
	if *workload == "" && *traceFile == "" {
		logger.Error("-workload or -trace required (or -list)")
		return harness.ExitUsage
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var tr *trace.Trace
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			logger.Error("opening trace", "err", err)
			return harness.ExitRunFailed
		}
		tr, err = trace.Read(f)
		f.Close()
		if err != nil {
			logger.Error("reading trace", "path", *traceFile, "err", err)
			return harness.ExitRunFailed
		}
	} else {
		w, err := workloads.ByName(*workload)
		if err != nil {
			logger.Error("unknown workload", "err", err)
			return harness.ExitUsage
		}
		// Generation can panic (heap exhaustion on an oversized scale);
		// contain it into an orderly failure.
		if err := harness.Safely(func() error {
			tr = w.Generate(workloads.GenConfig{Scale: *scale, Seed: *seed})
			return nil
		}); err != nil {
			logger.Error("generating workload", "workload", *workload, "err", err)
			return harness.ExitRunFailed
		}
	}
	st := tr.ComputeStats()
	fmt.Printf("workload %s: %d records, %d instructions, %d loads (%d dependent), %d stores\n\n",
		tr.Name, st.Records, st.Instructions, st.Loads, st.Dependent, st.Stores)

	var fc *exp.FileConfig
	if *configPath != "" {
		var err error
		fc, err = exp.LoadConfig(*configPath)
		if err != nil {
			logger.Error("loading config", "path", *configPath, "err", err)
			return harness.ExitUsage
		}
	}
	cfg := fc.SimConfig()
	rc := harness.RunConfig{StallTimeout: *stall}
	names := strings.Split(*prefetchers, ",")

	live, err := obs.StartLive(ctx, logger, *listen, "", 0)
	if err != nil {
		logger.Error("observability setup failed", "err", err)
		return harness.ExitUsage
	}
	defer live.Close()
	// prefetchsim runs the harness directly (no exp engine), so it feeds the
	// shared live-run counters itself — the endpoint and progress lines read
	// the same names the engine-backed commands publish.
	cellsTotal := live.Reg.Counter(obs.MetricCellsTotal, "runs submitted")
	cellsDone := live.Reg.Counter(obs.MetricCellsDone, "runs completed (success or failure)")
	cellsFailed := live.Reg.Counter(obs.MetricCellsFailed, "runs that finished with an error")
	lastIPC := live.Reg.Gauge(obs.GaugeLastIPC, "IPC of the most recently completed run")
	lastMPKI := live.Reg.Gauge(obs.GaugeLastL1MPKI, "L1 MPKI of the most recently completed run")
	cellsTotal.Add(uint64(len(names)))
	live.Ready()

	var baseIPC float64
	tb := stats.NewTable("results", "prefetcher", "IPC", "speedup", "L1 MPKI", "L2 MPKI", "cycles")
	var verboseRows []string
	failed, cancelled := 0, false
	for _, name := range names {
		if ctx.Err() != nil {
			cancelled = true
			break
		}
		name = strings.TrimSpace(name)
		var pf prefetch.Prefetcher
		var err error
		if name == "oracle" {
			pf = prefetch.NewOracle(tr, 0)
		} else {
			pf, err = exp.NewPrefetcherWith(name, fc)
		}
		if err != nil {
			logger.Error("building prefetcher", "prefetcher", name, "err", err)
			return harness.ExitUsage
		}
		start := time.Now()
		res, err := harness.Run(ctx, tr, pf, cfg, rc)
		if err != nil {
			if harness.IsCancelled(err) {
				cancelled = true
				break
			}
			// One bad (workload, prefetcher) pair fails its run without
			// killing the rest of the comparison.
			logger.Error("run failed", "prefetcher", name, "err", err)
			cellsDone.Inc()
			cellsFailed.Inc()
			failed++
			continue
		}
		cellsDone.Inc()
		lastIPC.Set(res.IPC())
		lastMPKI.Set(res.L1MPKI())
		logger.Info("run complete", "workload", tr.Name, "prefetcher", name,
			"duration", time.Since(start).Round(time.Millisecond))
		if name == "none" {
			baseIPC = res.IPC()
		}
		speedup := 0.0
		if baseIPC > 0 {
			speedup = res.IPC() / baseIPC
		}
		tb.AddRow(res.Prefetcher, res.IPC(), speedup, res.L1MPKI(), res.L2MPKI(), res.CPU.Cycles)
		if *verbose {
			c := res.Categories
			d := float64(c.Demand)
			verboseRows = append(verboseRows, fmt.Sprintf(
				"%-10s hitPF=%.3f shorterWait=%.3f nonTimely=%.3f missNoPF=%.3f hitDemand=%.3f neverHit=%.3f",
				res.Prefetcher, f(c.HitPrefetched, d), f(c.ShorterWait, d), f(c.NonTimely, d),
				f(c.MissNotPrefetched, d), f(c.HitOlderDemand, d), f(c.PrefetchNeverHit, d)))
		}
	}
	tb.Render(os.Stdout)
	if *verbose {
		fmt.Println("\naccess categories (fraction of demand accesses):")
		for _, row := range verboseRows {
			fmt.Println(row)
		}
	}
	switch {
	case cancelled:
		logger.Error("cancelled; partial results above")
		return harness.ExitCancelled
	case failed > 0:
		return harness.ExitRunFailed
	}
	return harness.ExitOK
}

func f(n uint64, d float64) float64 {
	if d == 0 {
		return 0
	}
	return float64(n) / d
}
