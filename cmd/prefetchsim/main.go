// Command prefetchsim runs one workload under one or more prefetchers and
// prints the headline metrics (IPC, speedup vs no prefetching, MPKI,
// access categories).
//
// Usage:
//
//	prefetchsim -workload list [-prefetchers context,sms,none] [-scale 1] [-seed 1] [-v]
//	prefetchsim -workload list -config machine.json
//	prefetchsim -trace list.trace # replay a serialized trace (see tracegen)
//	prefetchsim -list             # list available workloads
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"semloc/internal/exp"
	"semloc/internal/prefetch"
	"semloc/internal/sim"
	"semloc/internal/stats"
	"semloc/internal/trace"
	"semloc/internal/workloads"
)

func main() {
	var (
		workload    = flag.String("workload", "", "workload name (see -list)")
		traceFile   = flag.String("trace", "", "replay a serialized trace instead of generating a workload")
		prefetchers = flag.String("prefetchers", "none,stride,ghb-gdc,ghb-pcdc,sms,markov,context", "comma-separated prefetcher names")
		scale       = flag.Float64("scale", 1, "workload scale factor")
		seed        = flag.Uint64("seed", 1, "workload seed")
		list        = flag.Bool("list", false, "list available workloads")
		verbose     = flag.Bool("v", false, "print access-category breakdown")
		configPath  = flag.String("config", "", "JSON machine/prefetcher config (see exp.FileConfig)")
	)
	flag.Parse()

	if *list {
		tb := stats.NewTable("workloads (Table 3)", "name", "suite", "irregular", "description")
		for _, w := range workloads.All() {
			tb.AddRow(w.Name, w.Suite, w.Irregular, w.Description)
		}
		tb.Render(os.Stdout)
		return
	}
	if *workload == "" && *traceFile == "" {
		fmt.Fprintln(os.Stderr, "prefetchsim: -workload or -trace required (or -list)")
		os.Exit(2)
	}
	var tr *trace.Trace
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "prefetchsim:", err)
			os.Exit(1)
		}
		tr, err = trace.Read(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "prefetchsim: reading trace:", err)
			os.Exit(1)
		}
	} else {
		w, err := workloads.ByName(*workload)
		if err != nil {
			fmt.Fprintln(os.Stderr, "prefetchsim:", err)
			os.Exit(2)
		}
		tr = w.Generate(workloads.GenConfig{Scale: *scale, Seed: *seed})
	}
	st := tr.ComputeStats()
	fmt.Printf("workload %s: %d records, %d instructions, %d loads (%d dependent), %d stores\n\n",
		tr.Name, st.Records, st.Instructions, st.Loads, st.Dependent, st.Stores)

	var fc *exp.FileConfig
	if *configPath != "" {
		var err error
		fc, err = exp.LoadConfig(*configPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "prefetchsim:", err)
			os.Exit(2)
		}
	}
	cfg := fc.SimConfig()
	var baseIPC float64
	tb := stats.NewTable("results", "prefetcher", "IPC", "speedup", "L1 MPKI", "L2 MPKI", "cycles")
	var verboseRows []string
	for _, name := range strings.Split(*prefetchers, ",") {
		name = strings.TrimSpace(name)
		var pf prefetch.Prefetcher
		var err error
		if name == "oracle" {
			pf = prefetch.NewOracle(tr, 0)
		} else {
			pf, err = exp.NewPrefetcherWith(name, fc)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "prefetchsim:", err)
			os.Exit(2)
		}
		res, err := sim.Run(tr, pf, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "prefetchsim:", err)
			os.Exit(1)
		}
		if name == "none" {
			baseIPC = res.IPC()
		}
		speedup := 0.0
		if baseIPC > 0 {
			speedup = res.IPC() / baseIPC
		}
		tb.AddRow(res.Prefetcher, res.IPC(), speedup, res.L1MPKI(), res.L2MPKI(), res.CPU.Cycles)
		if *verbose {
			c := res.Categories
			d := float64(c.Demand)
			verboseRows = append(verboseRows, fmt.Sprintf(
				"%-10s hitPF=%.3f shorterWait=%.3f nonTimely=%.3f missNoPF=%.3f hitDemand=%.3f neverHit=%.3f",
				res.Prefetcher, f(c.HitPrefetched, d), f(c.ShorterWait, d), f(c.NonTimely, d),
				f(c.MissNotPrefetched, d), f(c.HitOlderDemand, d), f(c.PrefetchNeverHit, d)))
		}
	}
	tb.Render(os.Stdout)
	if *verbose {
		fmt.Println("\naccess categories (fraction of demand accesses):")
		for _, row := range verboseRows {
			fmt.Println(row)
		}
	}
}

func f(n uint64, d float64) float64 {
	if d == 0 {
		return 0
	}
	return float64(n) / d
}
