// Command prefetchsim runs one workload under one or more prefetchers and
// prints the headline metrics (IPC, speedup vs no prefetching, MPKI,
// access categories).
//
// Usage:
//
//	prefetchsim -workload list [-prefetchers context,sms,none] [-scale 1] [-seed 1] [-v]
//	prefetchsim -workload list -config machine.json
//	prefetchsim -trace list.trace # replay a serialized trace (see tracegen)
//	prefetchsim -workload list -remote 127.0.0.1:7077 # cross-check prefetchd
//	prefetchsim -list             # list available workloads
//
// -remote streams the workload's access records to a running prefetchd
// (see cmd/prefetchd) and cross-checks every remote decision against an
// in-process learner: the daemon is a deterministic replica, so any
// mismatch is a serving bug. -timeout bounds the whole invocation with a
// hard wall-clock deadline; exceeding it is a run failure (exit 1), not a
// cancellation. SIGINT/SIGTERM cancel in-flight simulations; the partial
// table is printed. Tables go to stdout; progress and diagnostics go to
// stderr as structured logs (-q silences them). -listen serves live
// metrics (Prometheus /metrics, expvar, pprof) while the runs execute.
// Exit codes: 0 all runs completed, 1 at least one run failed (including
// -timeout expiry and -remote mismatches), 2 usage error, 3 cancelled
// (see DESIGN.md, "Failure model").
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"reflect"
	"strings"
	"syscall"
	"time"

	"semloc/internal/core"
	"semloc/internal/exp"
	"semloc/internal/harness"
	"semloc/internal/obs"
	"semloc/internal/prefetch"
	"semloc/internal/serve"
	"semloc/internal/serve/client"
	"semloc/internal/stats"
	"semloc/internal/trace"
	"semloc/internal/workloads"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("prefetchsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		workload    = fs.String("workload", "", "workload name (see -list)")
		traceFile   = fs.String("trace", "", "replay a serialized trace instead of generating a workload")
		prefetchers = fs.String("prefetchers", "none,stride,ghb-gdc,ghb-pcdc,sms,markov,context", "comma-separated prefetcher names")
		scale       = fs.Float64("scale", 1, "workload scale factor")
		seed        = fs.Uint64("seed", 1, "workload seed")
		list        = fs.Bool("list", false, "list available workloads")
		verbose     = fs.Bool("v", false, "print access-category breakdown")
		configPath  = fs.String("config", "", "JSON machine/prefetcher config (see exp.FileConfig)")
		stall       = fs.Duration("stall", 0, "abort a run making no forward progress for this long (0 disables the watchdog)")
		timeout     = fs.Duration("timeout", 0, "hard wall-clock budget for the whole invocation; exceeding it exits 1 (0 disables)")
		quiet       = fs.Bool("q", false, "suppress progress logging (errors still print)")
		listen      = fs.String("listen", "", "serve /metrics, /debug/vars and pprof on this address while runs execute (empty host binds loopback)")
		remote      = fs.String("remote", "", "prefetchd address: stream the workload through the daemon and cross-check decisions against the in-process learner")
		session     = fs.String("session", "", "session name for -remote (default derives from the workload and pid)")
	)
	if err := fs.Parse(args); err != nil {
		return harness.ExitUsage
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "prefetchsim: unexpected arguments: %v\n", fs.Args())
		return harness.ExitUsage
	}
	logger := obs.NewLogger(stderr, "prefetchsim", *quiet, false)

	if *list {
		tb := stats.NewTable("workloads (Table 3)", "name", "suite", "irregular", "description")
		for _, w := range workloads.All() {
			tb.AddRow(w.Name, w.Suite, w.Irregular, w.Description)
		}
		tb.Render(stdout)
		return harness.ExitOK
	}
	if *workload == "" && *traceFile == "" {
		logger.Error("-workload or -trace required (or -list)")
		return harness.ExitUsage
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// The deadline threads through the same cancellation path as signals;
	// harness.IsTimeout distinguishes the two at exit-code time.
	ctx, cancelTimeout := harness.WithTimeout(ctx, *timeout)
	defer cancelTimeout()

	var tr *trace.Trace
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			logger.Error("opening trace", "err", err)
			return harness.ExitRunFailed
		}
		tr, err = trace.Read(f)
		f.Close()
		if err != nil {
			logger.Error("reading trace", "path", *traceFile, "err", err)
			return harness.ExitRunFailed
		}
	} else {
		w, err := workloads.ByName(*workload)
		if err != nil {
			logger.Error("unknown workload", "err", err)
			return harness.ExitUsage
		}
		// Generation can panic (heap exhaustion on an oversized scale);
		// contain it into an orderly failure.
		if err := harness.Safely(func() error {
			tr = w.Generate(workloads.GenConfig{Scale: *scale, Seed: *seed})
			return nil
		}); err != nil {
			logger.Error("generating workload", "workload", *workload, "err", err)
			return harness.ExitRunFailed
		}
	}
	st := tr.ComputeStats()
	fmt.Fprintf(stdout, "workload %s: %d records, %d instructions, %d loads (%d dependent), %d stores\n\n",
		tr.Name, st.Records, st.Instructions, st.Loads, st.Dependent, st.Stores)

	if *remote != "" {
		name := *session
		if name == "" {
			name = fmt.Sprintf("prefetchsim-%s-%d", tr.Name, os.Getpid())
		}
		return runRemote(ctx, logger, stdout, tr, *remote, name, *timeout)
	}

	var fc *exp.FileConfig
	if *configPath != "" {
		var err error
		fc, err = exp.LoadConfig(*configPath)
		if err != nil {
			logger.Error("loading config", "path", *configPath, "err", err)
			return harness.ExitUsage
		}
	}
	cfg := fc.SimConfig()
	rc := harness.RunConfig{StallTimeout: *stall}
	names := strings.Split(*prefetchers, ",")

	live, err := obs.StartLive(ctx, logger, *listen, "", 0)
	if err != nil {
		logger.Error("observability setup failed", "err", err)
		return harness.ExitUsage
	}
	defer live.Close()
	// prefetchsim runs the harness directly (no exp engine), so it feeds the
	// shared live-run counters itself — the endpoint and progress lines read
	// the same names the engine-backed commands publish.
	cellsTotal := live.Reg.Counter(obs.MetricCellsTotal, "runs submitted")
	cellsDone := live.Reg.Counter(obs.MetricCellsDone, "runs completed (success or failure)")
	cellsFailed := live.Reg.Counter(obs.MetricCellsFailed, "runs that finished with an error")
	lastIPC := live.Reg.Gauge(obs.GaugeLastIPC, "IPC of the most recently completed run")
	lastMPKI := live.Reg.Gauge(obs.GaugeLastL1MPKI, "L1 MPKI of the most recently completed run")
	cellsTotal.Add(uint64(len(names)))
	live.Ready()

	var baseIPC float64
	tb := stats.NewTable("results", "prefetcher", "IPC", "speedup", "L1 MPKI", "L2 MPKI", "cycles")
	var verboseRows []string
	failed, cancelled := 0, false
	for _, name := range names {
		if ctx.Err() != nil {
			cancelled = true
			break
		}
		name = strings.TrimSpace(name)
		var pf prefetch.Prefetcher
		var err error
		if name == "oracle" {
			pf = prefetch.NewOracle(tr, 0)
		} else {
			pf, err = exp.NewPrefetcherWith(name, fc)
		}
		if err != nil {
			logger.Error("building prefetcher", "prefetcher", name, "err", err)
			return harness.ExitUsage
		}
		start := time.Now()
		res, err := harness.Run(ctx, tr, pf, cfg, rc)
		if err != nil {
			if harness.IsCancelled(err) {
				cancelled = true
				break
			}
			// One bad (workload, prefetcher) pair fails its run without
			// killing the rest of the comparison. A -timeout expiry fails
			// this run and cancels the remaining ones via ctx.
			logger.Error("run failed", "prefetcher", name, "err", err)
			cellsDone.Inc()
			cellsFailed.Inc()
			failed++
			continue
		}
		cellsDone.Inc()
		lastIPC.Set(res.IPC())
		lastMPKI.Set(res.L1MPKI())
		logger.Info("run complete", "workload", tr.Name, "prefetcher", name,
			"duration", time.Since(start).Round(time.Millisecond))
		if name == "none" {
			baseIPC = res.IPC()
		}
		speedup := 0.0
		if baseIPC > 0 {
			speedup = res.IPC() / baseIPC
		}
		tb.AddRow(res.Prefetcher, res.IPC(), speedup, res.L1MPKI(), res.L2MPKI(), res.CPU.Cycles)
		if *verbose {
			c := res.Categories
			d := float64(c.Demand)
			verboseRows = append(verboseRows, fmt.Sprintf(
				"%-10s hitPF=%.3f shorterWait=%.3f nonTimely=%.3f missNoPF=%.3f hitDemand=%.3f neverHit=%.3f",
				res.Prefetcher, f(c.HitPrefetched, d), f(c.ShorterWait, d), f(c.NonTimely, d),
				f(c.MissNotPrefetched, d), f(c.HitOlderDemand, d), f(c.PrefetchNeverHit, d)))
		}
	}
	tb.Render(stdout)
	if *verbose {
		fmt.Fprintln(stdout, "\naccess categories (fraction of demand accesses):")
		for _, row := range verboseRows {
			fmt.Fprintln(stdout, row)
		}
	}
	switch {
	case harness.IsTimeout(context.Cause(ctx)):
		logger.Error("timed out; partial results above", "timeout", *timeout)
		return harness.ExitRunFailed
	case cancelled:
		logger.Error("cancelled; partial results above")
		return harness.ExitCancelled
	case failed > 0:
		return harness.ExitRunFailed
	}
	return harness.ExitOK
}

// runRemote replays the trace's access records through a prefetchd daemon
// and cross-checks every decision against an in-process learner. The
// serving learner is deterministic (see internal/serve), so a healthy
// daemon matches bit-for-bit; degraded fallback decisions (daemon shedding
// load) are counted separately because the daemon's learner skipped those
// accesses and the streams are no longer comparable afterwards.
func runRemote(ctx context.Context, logger *slog.Logger, stdout io.Writer, tr *trace.Trace, addr, session string, timeout time.Duration) int {
	frames := serve.AccessFrames(tr)
	local, err := serve.NewLearner(core.Config{})
	if err != nil {
		logger.Error("building reference learner", "err", err)
		return harness.ExitRunFailed
	}
	c, err := client.Dial(client.Config{
		Addr:    client.FixedAddr(addr),
		Session: session,
		Logf: func(format string, a ...any) {
			logger.Info(fmt.Sprintf(format, a...))
		},
	})
	if err != nil {
		logger.Error("dialing prefetchd", "addr", addr, "err", err)
		return harness.ExitRunFailed
	}
	defer c.Close()
	if c.Resumed() {
		// The local learner starts cold; a warm daemon session cannot be
		// cross-checked against it.
		logger.Error("session already exists on the daemon; pick a fresh -session",
			"session", session, "server_seq", c.ServerSeq())
		return harness.ExitRunFailed
	}
	logger.Info("streaming to prefetchd", "addr", addr, "session", session,
		"accesses", len(frames))

	start := time.Now()
	matched, degraded, mismatched := 0, 0, 0
	cancelled := false
	for i := range frames {
		if ctx.Err() != nil {
			cancelled = true
			break
		}
		fr := &frames[i]
		want := local.Decide(fr)
		got, err := c.Decide(fr)
		if err != nil {
			logger.Error("remote decision failed", "seq", fr.Seq, "err", err)
			return harness.ExitRunFailed
		}
		switch {
		case got.Degraded:
			degraded++
		case serve.SameDecision(got, want):
			matched++
		default:
			if mismatched == 0 {
				logger.Error("daemon decision diverged from in-process learner",
					"seq", fr.Seq, "remote", got.Prefetch, "local", want.Prefetch)
			}
			mismatched++
		}
	}

	tb := stats.NewTable(fmt.Sprintf("remote cross-check vs %s", addr),
		"accesses", "matched", "degraded", "mismatched", "retries", "reconnects")
	tb.AddRow(matched+degraded+mismatched, matched, degraded, mismatched, c.Retries, c.Reconnects)
	tb.Render(stdout)
	logger.Info("remote stream complete", "duration", time.Since(start).Round(time.Millisecond))

	switch {
	case harness.IsTimeout(context.Cause(ctx)):
		logger.Error("timed out; partial cross-check above", "timeout", timeout)
		return harness.ExitRunFailed
	case cancelled:
		logger.Error("cancelled; partial cross-check above")
		return harness.ExitCancelled
	case mismatched > 0:
		logger.Error("daemon diverged from the in-process learner", "mismatched", mismatched)
		dumpDivergence(logger, stdout, c, local)
		return harness.ExitRunFailed
	}
	return harness.ExitOK
}

// dumpDivergence prints both sides' learner state after a cross-check
// mismatch: the daemon's per-session stats frame (with its learner-health
// snapshot) next to the in-process learner's health, so the first
// diverging counter is visible without re-running under a tracer.
func dumpDivergence(logger *slog.Logger, stdout io.Writer, c *client.Client, local *serve.Learner) {
	st, err := c.Stats()
	if err != nil {
		logger.Error("fetching session stats after mismatch", "err", err)
		return
	}
	lh := local.Health()
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	fmt.Fprintln(stdout, "remote session stats:")
	if err := enc.Encode(st); err != nil {
		logger.Error("encoding remote stats", "err", err)
		return
	}
	fmt.Fprintln(stdout, "local learner health:")
	if err := enc.Encode(&lh); err != nil {
		logger.Error("encoding local health", "err", err)
		return
	}
	if st.Learner != nil {
		if first := firstHealthDiff(st.Learner, &lh); first != "" {
			logger.Error("first diverging learner-health field", "field", first)
		}
	}
}

// firstHealthDiff names the first learner-health field that differs
// between the remote and local snapshots (JSON field order), or "".
func firstHealthDiff(remote, local *core.LearnerHealth) string {
	rb, err1 := json.Marshal(remote)
	lb, err2 := json.Marshal(local)
	if err1 != nil || err2 != nil {
		return ""
	}
	var rm, lm map[string]any
	if json.Unmarshal(rb, &rm) != nil || json.Unmarshal(lb, &lm) != nil {
		return ""
	}
	for _, k := range healthFieldOrder {
		if !reflect.DeepEqual(rm[k], lm[k]) {
			return k
		}
	}
	return ""
}

// healthFieldOrder lists counter-ish LearnerHealth JSON fields in rough
// causal order, so the reported "first diff" points at the earliest
// divergence rather than a downstream symptom.
var healthFieldOrder = []string{
	"accesses", "predictions", "explores", "exploits", "suppressed",
	"real_prefetches", "shadow_prefetches", "queue_hits",
	"outcome_accurate", "outcome_late", "outcome_evicted", "outcome_useless",
	"pos_rewards", "neg_rewards", "zero_rewards",
	"cst_insertions", "cst_replacements", "cst_rejects",
	"cst_entries", "cst_links", "positive_links", "saturated_links",
}

func f(n uint64, d float64) float64 {
	if d == 0 {
		return 0
	}
	return float64(n) / d
}
