package main

import (
	"bytes"
	"strings"
	"testing"

	"semloc/internal/harness"
	"semloc/internal/serve"
)

// simOut runs the prefetchsim CLI in-process and returns (stdout, stderr,
// exit code).
func simOut(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code := run(args, &out, &errBuf)
	return out.String(), errBuf.String(), code
}

func TestListWorkloads(t *testing.T) {
	out, _, code := simOut(t, "-list")
	if code != harness.ExitOK {
		t.Fatalf("-list exited %d", code)
	}
	for _, want := range []string{"name", "suite", "list"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list output missing %q:\n%s", want, out)
		}
	}
}

func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{},                         // no -workload/-trace/-list
		{"-no-such-flag"},          // unknown flag
		{"-workload", "no-such"},   // unknown workload
		{"-workload", "list", "x"}, // stray positional
		{"-workload", "list", "-prefetchers", "no-such", "-scale", "0.05"},
	}
	for _, args := range cases {
		if _, _, code := simOut(t, append(args, "-q")...); code != harness.ExitUsage {
			t.Errorf("prefetchsim %v exited %d, want %d", args, code, harness.ExitUsage)
		}
	}
}

// TestTimeoutExitsRunFailed is the -timeout contract: a run that cannot
// finish inside its wall-clock budget is a run failure (exit 1), not a
// cancellation (exit 3) — scripts distinguish "my deadline fired" from
// "the user pressed ^C".
func TestTimeoutExitsRunFailed(t *testing.T) {
	_, errOut, code := simOut(t, "-workload", "list", "-scale", "0.05",
		"-prefetchers", "context", "-timeout", "1ns", "-q")
	if code != harness.ExitRunFailed {
		t.Fatalf("-timeout 1ns exited %d, want %d\nstderr:\n%s", code, harness.ExitRunFailed, errOut)
	}
	if !strings.Contains(errOut, "timed out") {
		t.Errorf("stderr does not report the timeout:\n%s", errOut)
	}
}

// TestRemoteCrossCheck streams a small workload through an in-process
// prefetchd and requires every daemon decision to match the local learner
// (the table's mismatched column must be zero and the exit code clean).
func TestRemoteCrossCheck(t *testing.T) {
	srv, err := serve.NewServer(serve.Config{Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	out, errOut, code := simOut(t, "-workload", "list", "-scale", "0.05",
		"-remote", srv.Addr().String(), "-session", "cross-check", "-q")
	if code != harness.ExitOK {
		t.Fatalf("-remote exited %d\nstdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
	if !strings.Contains(out, "remote cross-check") || !strings.Contains(out, "matched") {
		t.Errorf("missing cross-check table:\n%s", out)
	}

	// Re-running the same session against the warm daemon must refuse:
	// the local reference learner starts cold and cannot be compared.
	_, errOut, code = simOut(t, "-workload", "list", "-scale", "0.05",
		"-remote", srv.Addr().String(), "-session", "cross-check", "-q")
	if code != harness.ExitRunFailed {
		t.Fatalf("warm-session rerun exited %d, want %d", code, harness.ExitRunFailed)
	}
	if !strings.Contains(errOut, "session already exists") {
		t.Errorf("stderr does not explain the warm-session refusal:\n%s", errOut)
	}
}

// TestRemoteTimeout: the -timeout deadline also bounds -remote streaming.
func TestRemoteTimeout(t *testing.T) {
	srv, err := serve.NewServer(serve.Config{Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	_, errOut, code := simOut(t, "-workload", "list", "-scale", "0.05",
		"-remote", srv.Addr().String(), "-session", "remote-timeout",
		"-timeout", "1ns", "-q")
	if code != harness.ExitRunFailed {
		t.Fatalf("-remote with -timeout 1ns exited %d, want %d\nstderr:\n%s",
			code, harness.ExitRunFailed, errOut)
	}
}
