package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"semloc/internal/exp"
	"semloc/internal/harness"
	"semloc/internal/obs"
	"semloc/internal/serve"
	"semloc/internal/serve/client"
)

// learnerArtifact runs one instrumented cell and returns its artifact path.
func learnerArtifact(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	opts := exp.DefaultOptions()
	opts.Scale = 0.05
	opts.OutDir = dir
	opts.Telemetry = obs.Config{Interval: 1024}
	r := exp.NewRunner(opts)
	if _, err := r.Result("list", "context"); err != nil {
		t.Fatal(err)
	}
	return exp.ArtifactPath(dir, "list", "context")
}

// TestLearnerSmoke is the introspection layer's end-to-end smoke, also run
// race-enabled by `make learner-smoke`: an instrumented sweep renders its
// health report, curve, and anomaly gate through `inspect learner`, and a
// live prefetchd session round-trips stats (with learner health) and an
// explain report that the same subcommand pretty-prints.
func TestLearnerSmoke(t *testing.T) {
	art := learnerArtifact(t)

	// Health report over the artifact.
	var out bytes.Buffer
	if code := run([]string{"learner", "-q", "-run", art}, &out); code != harness.ExitOK {
		t.Fatalf("inspect learner exited %d:\n%s", code, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"learner list/context", "outcomes: accurate", "policy: explores",
		"rewards:", "CST:", "CST churn:", "hottest deltas:", "anomaly check: ok",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("health report missing %q:\n%s", want, got)
		}
	}

	// Anomaly gate: a healthy run passes.
	out.Reset()
	if code := run([]string{"learner", "-q", "-run", art, "-check"}, &out); code != harness.ExitOK {
		t.Fatalf("inspect learner -check exited %d:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "learner healthy") {
		t.Errorf("-check output: %s", out.String())
	}

	// Curve: header plus one row per interval sample, in both formats.
	out.Reset()
	if code := run([]string{"learner", "-q", "-run", art, "-curve"}, &out); code != harness.ExitOK {
		t.Fatalf("inspect learner -curve exited %d:\n%s", code, out.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) < 3 {
		t.Fatalf("curve has %d lines, want header plus samples:\n%s", len(lines), out.String())
	}
	for _, col := range []string{"accurate", "explores", "pos_rewards", "cst_replacements", "epsilon"} {
		if !strings.Contains(lines[0], col) {
			t.Errorf("curve header missing %q: %s", col, lines[0])
		}
	}
	out.Reset()
	if code := run([]string{"learner", "-q", "-run", art, "-curve", "-format", "json"}, &out); code != harness.ExitOK {
		t.Fatalf("inspect learner -curve -format json exited %d", code)
	}
	var samples []map[string]any
	if err := json.Unmarshal(out.Bytes(), &samples); err != nil {
		t.Fatalf("curve JSON: %v", err)
	}

	// Live half: a prefetchd session's stats carry learner health, and its
	// explain report renders through the same subcommand.
	s, err := serve.NewServer(serve.Config{Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := client.Dial(client.Config{
		Addr: client.FixedAddr(s.Addr().String()), Session: "learner-smoke",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := uint64(1); i <= 2000; i++ {
		fr := &serve.Frame{Type: serve.FrameAccess, Seq: i, PC: 0x400000, Addr: 0x100000 + (i%512)*64}
		if _, err := c.Decide(fr); err != nil {
			t.Fatalf("seq %d: %v", i, err)
		}
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Learner == nil || st.Learner.Accesses == 0 {
		t.Fatalf("session stats carry no learner health: %+v", st)
	}
	rep, err := c.Explain(4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Session != "learner-smoke" || rep.Health.Accesses != st.Learner.Accesses {
		t.Fatalf("explain report inconsistent with stats: %+v vs %+v", rep, st.Learner)
	}
	if len(rep.Contexts) == 0 || len(rep.Contexts) > 4 {
		t.Fatalf("explain returned %d contexts, want 1..4", len(rep.Contexts))
	}
	for _, ctx := range rep.Contexts {
		if ctx.Trials == 0 || len(ctx.Links) == 0 {
			t.Fatalf("hot context with no trials or links: %+v", ctx)
		}
	}

	dump := filepath.Join(t.TempDir(), "explain.json")
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dump, data, 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if code := run([]string{"learner", "-q", "-explain", dump, "-check"}, &out); code != harness.ExitOK {
		t.Fatalf("inspect learner -explain exited %d:\n%s", code, out.String())
	}
	got = out.String()
	for _, want := range []string{
		"session learner-smoke", "contexts by trials", "ctx 0x", "score",
		"anomaly check: ok",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("explain render missing %q:\n%s", want, got)
		}
	}
}

func TestLearnerUsageErrors(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"learner"}, &out); code != harness.ExitUsage {
		t.Errorf("no source exited %d, want usage", code)
	}
	if code := run([]string{"learner", "-run", "a", "-explain", "b"}, &out); code != harness.ExitUsage {
		t.Errorf("both sources exited %d, want usage", code)
	}
	if code := run([]string{"learner", "-run", "a", "-format", "xml"}, &out); code != harness.ExitUsage {
		t.Errorf("bad format exited %d, want usage", code)
	}
	if code := run([]string{"learner", "-q", "-run", filepath.Join(t.TempDir(), "nope.json")}, &out); code != harness.ExitRunFailed {
		t.Errorf("missing artifact exited %d, want run-failed", code)
	}
}

// TestLearnerCheckCatchesStalledLearning feeds the gate a doctored
// artifact whose learner issued at volume but never landed a prefetch.
func TestLearnerCheckCatchesStalledLearning(t *testing.T) {
	art := learnerArtifact(t)
	a, err := exp.LoadArtifact(art)
	if err != nil {
		t.Fatal(err)
	}
	m := *a.Metrics
	m.Accesses = 100000
	m.RealPrefetches = 5000
	m.OutcomeAccurate, m.OutcomeLate, m.OutcomeEvicted, m.OutcomeUseless = 0, 4000, 500, 500
	m.OutcomeCarried = 0
	a.Metrics = &m
	a.TableStats.PositiveLinks = 0
	doctored := filepath.Join(t.TempDir(), "stalled.json")
	data, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(doctored, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if code := run([]string{"learner", "-q", "-run", doctored, "-check"}, &out); code != harness.ExitRunFailed {
		t.Fatalf("stalled-learning artifact passed the gate (exit %d):\n%s", code, out.String())
	}
}
