package main

// The `inspect learner` subcommand: learner-introspection rendering.
// Three sources feed it — an exp.RunArtifact's final counters (health
// report, anomaly gate), the artifact's interval series (health curve),
// and an explain dump saved from prefetchd's explain frame (context
// score-table pretty-printer). The anomaly gate doubles as a regression
// check: `inspect learner -run ... -check` exits nonzero on stalled
// learning or a churn storm, so CI can assert a sweep actually learned.

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"semloc/internal/core"
	"semloc/internal/exp"
	"semloc/internal/harness"
	"semloc/internal/obs"
	"semloc/internal/serve"
)

func runLearner(args []string, stdout io.Writer) int {
	fs := flag.NewFlagSet("inspect learner", flag.ContinueOnError)
	var (
		runPath     = fs.String("run", "", "per-run artifact JSON (written by exp.Runner / -obs-dir)")
		explainPath = fs.String("explain", "", "explain dump JSON (a serve.ExplainReport fetched from prefetchd)")
		curve       = fs.Bool("curve", false, "emit the learner-health curve, one row per interval sample")
		check       = fs.Bool("check", false, "run the anomaly checks and exit nonzero on stalled learning or a churn storm")
		format      = fs.String("format", "csv", "curve output format: csv or json")
		outPath     = fs.String("out", "", "output path (default stdout)")
		quiet       = fs.Bool("q", false, "suppress informational logging")
	)
	if err := fs.Parse(args); err != nil {
		return harness.ExitUsage
	}
	logger := obs.NewLogger(os.Stderr, "inspect", *quiet, false)

	if (*runPath == "") == (*explainPath == "") {
		fmt.Fprintln(os.Stderr, "inspect learner: exactly one of -run or -explain required")
		return harness.ExitUsage
	}
	if *format != "csv" && *format != "json" {
		fmt.Fprintln(os.Stderr, "inspect learner: -format must be csv or json")
		return harness.ExitUsage
	}

	out := stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			logger.Error("creating output", "err", err)
			return harness.ExitRunFailed
		}
		defer f.Close()
		out = f
	}

	if *explainPath != "" {
		rep, err := loadExplain(*explainPath)
		if err != nil {
			logger.Error("loading explain dump", "path", *explainPath, "err", err)
			return harness.ExitRunFailed
		}
		renderExplain(out, rep)
		if *check {
			if err := rep.Health.CheckAnomalies(); err != nil {
				logger.Error("anomaly check failed", "err", err)
				return harness.ExitRunFailed
			}
			fmt.Fprintln(out, "anomaly check: ok")
		}
		return harness.ExitOK
	}

	art, err := exp.LoadArtifact(*runPath)
	if err != nil {
		logger.Error("loading artifact", "path", *runPath, "err", err)
		return harness.ExitRunFailed
	}
	if *curve {
		if err := renderHealthCurve(art, *format, out); err != nil {
			logger.Error("rendering learner curve", "err", err)
			return harness.ExitRunFailed
		}
		return harness.ExitOK
	}
	h, err := healthFromArtifact(art)
	if err != nil {
		logger.Error("building health snapshot", "err", err)
		return harness.ExitRunFailed
	}
	if *check {
		if err := h.CheckAnomalies(); err != nil {
			logger.Error("anomaly check failed", "workload", art.Workload, "prefetcher", art.Prefetcher, "err", err)
			return harness.ExitRunFailed
		}
		fmt.Fprintf(out, "ok: %s/%s learner healthy over %d accesses\n", art.Workload, art.Prefetcher, h.Accesses)
		return harness.ExitOK
	}
	fmt.Fprintf(out, "learner %s/%s (scale %g, seed %d)\n", art.Workload, art.Prefetcher, art.Scale, art.Seed)
	renderHealth(out, &h)
	if ts := art.TableStats; ts != nil && len(ts.TopDeltas) > 0 {
		fmt.Fprintln(out, "  hottest deltas:")
		for _, d := range ts.TopDeltas {
			fmt.Fprintf(out, "    delta %+d x%d\n", d.Delta, d.Count)
		}
	}
	if err := h.CheckAnomalies(); err != nil {
		fmt.Fprintf(out, "  ANOMALY: %v\n", err)
	} else {
		fmt.Fprintln(out, "  anomaly check: ok")
	}
	return harness.ExitOK
}

// healthFromArtifact reconstructs a LearnerHealth from an artifact's final
// counters and learned-state summary. Epsilon/accuracy ride in the series
// gauges (the artifact's Metrics carry no policy state), so they come from
// the last interval sample when the run was sampled and stay zero
// otherwise; CSTCapacity is unknown to artifacts and stays zero (the
// anomaly checks do not consult it).
func healthFromArtifact(art *exp.RunArtifact) (core.LearnerHealth, error) {
	m := art.Metrics
	if m == nil {
		return core.LearnerHealth{}, fmt.Errorf("inspect: artifact %s/%s carries no learner metrics (prefetcher %q exports none)",
			art.Workload, art.Prefetcher, art.Prefetcher)
	}
	h := core.LearnerHealth{
		Accesses:         m.Accesses,
		Predictions:      m.Predictions,
		RealPrefetches:   m.RealPrefetches,
		ShadowPrefetches: m.ShadowPrefetches,
		QueueHits:        m.QueueHits,
		OutcomeAccurate:  m.OutcomeAccurate,
		OutcomeLate:      m.OutcomeLate,
		OutcomeEvicted:   m.OutcomeEvicted,
		OutcomeUseless:   m.OutcomeUseless,
		OutcomeCarried:   m.OutcomeCarried,
		Explores:         m.Explores,
		Exploits:         m.Exploits,
		Suppressed:       m.Suppressed,
		PosRewards:       m.PosRewards,
		NegRewards:       m.NegRewards,
		ZeroRewards:      m.ZeroRewards,
		CSTInsertions:    m.CSTInsertions,
		CSTReplacements:  m.CSTReplacements,
		CSTRejects:       m.CSTRejects,
	}
	if ts := art.TableStats; ts != nil {
		h.CSTEntries, h.CSTLinks = ts.Entries, ts.Links
		h.PositiveLinks, h.SaturatedLinks = ts.PositiveLinks, ts.SaturatedLinks
		h.MeanScore = ts.MeanScore
	}
	if art.Result != nil && art.Result.Series != nil && len(art.Result.Series.Samples) > 0 {
		last := &art.Result.Series.Samples[len(art.Result.Series.Samples)-1]
		h.Epsilon, h.Accuracy = last.Epsilon, last.Accuracy
	}
	return h, nil
}

// renderHealth prints the health snapshot in the summary's indented style.
func renderHealth(w io.Writer, h *core.LearnerHealth) {
	fmt.Fprintf(w, "  accesses %d  predictions %d (real %d, shadow %d)  queue hits %d\n",
		h.Accesses, h.Predictions, h.RealPrefetches, h.ShadowPrefetches, h.QueueHits)
	fmt.Fprintf(w, "  outcomes: accurate %d, late %d, evicted %d, useless %d (carried %d)\n",
		h.OutcomeAccurate, h.OutcomeLate, h.OutcomeEvicted, h.OutcomeUseless, h.OutcomeCarried)
	fmt.Fprintf(w, "  policy: explores %d, exploits %d, suppressed %d, epsilon %.3f, accuracy %.3f\n",
		h.Explores, h.Exploits, h.Suppressed, h.Epsilon, h.Accuracy)
	fmt.Fprintf(w, "  rewards: %d positive, %d zero, %d negative\n",
		h.PosRewards, h.ZeroRewards, h.NegRewards)
	capacity := ""
	if h.CSTCapacity > 0 {
		capacity = fmt.Sprintf("/%d", h.CSTCapacity)
	}
	fmt.Fprintf(w, "  CST: %d%s entries, %d links (%d positive, %d saturated), mean score %.2f\n",
		h.CSTEntries, capacity, h.CSTLinks, h.PositiveLinks, h.SaturatedLinks, h.MeanScore)
	fmt.Fprintf(w, "  CST churn: %d insertions, %d replacements, %d rejects\n",
		h.CSTInsertions, h.CSTReplacements, h.CSTRejects)
}

// loadExplain reads an explain dump: either a bare serve.ExplainReport or
// a whole explain frame (both shapes decode; the frame wrapper wins when
// its payload is present).
func loadExplain(path string) (*serve.ExplainReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var fr serve.Frame
	if err := json.Unmarshal(data, &fr); err != nil {
		return nil, fmt.Errorf("inspect: parsing explain dump %s: %w", path, err)
	}
	if fr.Explain != nil {
		return fr.Explain, nil
	}
	var rep serve.ExplainReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("inspect: parsing explain dump %s: %w", path, err)
	}
	if rep.Session == "" && rep.Health.Accesses == 0 && len(rep.Contexts) == 0 {
		return nil, fmt.Errorf("inspect: %s carries no explain payload", path)
	}
	return &rep, nil
}

// renderExplain pretty-prints one live explain report: the health block
// plus each hot context's candidate score table, best-ranked link first.
func renderExplain(w io.Writer, rep *serve.ExplainReport) {
	fmt.Fprintf(w, "session %s\n", rep.Session)
	renderHealth(w, &rep.Health)
	if len(rep.Contexts) == 0 {
		fmt.Fprintln(w, "  contexts: none learned yet")
		return
	}
	fmt.Fprintf(w, "  top %d contexts by trials:\n", len(rep.Contexts))
	for _, c := range rep.Contexts {
		fmt.Fprintf(w, "    ctx %#016x  trials %d  churn %d\n", c.Context, c.Trials, c.Churn)
		for rank, l := range c.Links {
			fmt.Fprintf(w, "      #%d delta %+d score %+d\n", rank+1, l.Delta, l.Score)
		}
	}
}

// renderHealthCurve emits the learner-health slice of the interval series:
// outcome/decision/reward/churn deltas plus the learner gauges per sample.
func renderHealthCurve(art *exp.RunArtifact, format string, w io.Writer) error {
	s, err := series(art)
	if err != nil {
		return err
	}
	if format == "json" {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(s.Samples)
	}
	cw := csv.NewWriter(w)
	header := []string{
		"index", "accurate", "late", "evicted", "useless",
		"explores", "exploits", "suppressed",
		"pos_rewards", "neg_rewards", "zero_rewards",
		"cst_insertions", "cst_replacements", "cst_rejects",
		"epsilon", "accuracy", "cst_entries",
		"cst_positive_links", "cst_saturated_links", "cst_mean_score",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	u := func(v uint64) string { return strconv.FormatUint(v, 10) }
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }
	for i := range s.Samples {
		sm := &s.Samples[i]
		row := []string{
			u(sm.Index), u(sm.Accurate), u(sm.Late), u(sm.Evicted), u(sm.Useless),
			u(sm.Explores), u(sm.Exploits), u(sm.Suppressed),
			u(sm.PosRewards), u(sm.NegRewards), u(sm.ZeroRewards),
			u(sm.CSTInsertions), u(sm.CSTReplacements), u(sm.CSTRejects),
			f(sm.Epsilon), f(sm.Accuracy), strconv.Itoa(sm.CSTEntries),
			strconv.Itoa(sm.CSTPositiveLinks), strconv.Itoa(sm.CSTSaturatedLinks), f(sm.CSTMeanScore),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
