package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"semloc/internal/harness"
	"semloc/internal/obs"
)

// writeSpanFile records a small synthetic batch — one trace generation, two
// clean cells on overlapping lanes, one failed cell — and writes it the way
// a command's -spans flag does.
func writeSpanFile(t *testing.T) string {
	t.Helper()
	rec := obs.NewSpanRecorder()
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	rec.Add(obs.Span{Cat: obs.CatTrace, Workload: "list", Start: 0, Dur: ms(5)})
	rec.Add(obs.Span{
		Cat: obs.CatRun, Workload: "list", Prefetcher: "none",
		Start: ms(5), Dur: ms(40),
		Phases: []obs.Phase{
			{Name: obs.PhaseDecode, Start: ms(5), Dur: ms(2)},
			{Name: obs.PhaseQueueWait, Start: ms(7), Dur: ms(3)},
			{Name: obs.PhaseWarmup, Start: ms(10), Dur: ms(10)},
			{Name: obs.PhaseMeasured, Start: ms(20), Dur: ms(25)},
		},
	})
	rec.Add(obs.Span{
		Cat: obs.CatRun, Workload: "list", Prefetcher: "context", Point: 2,
		Start: ms(6), Dur: ms(60),
		Phases: []obs.Phase{
			{Name: obs.PhaseDecode, Start: ms(6), Dur: ms(1)},
			{Name: obs.PhaseMeasured, Start: ms(7), Dur: ms(59)},
		},
	})
	rec.Add(obs.Span{
		Cat: obs.CatRun, Workload: "list", Prefetcher: "bogus",
		Start: ms(50), Dur: ms(1), Err: true,
	})
	path := filepath.Join(t.TempDir(), "batch.trace.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := rec.WriteChromeTrace(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestInspectSpans(t *testing.T) {
	path := writeSpanFile(t)
	var out bytes.Buffer
	if code := run([]string{"spans", path}, &out); code != harness.ExitOK {
		t.Fatalf("inspect spans exited %d:\n%s", code, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"3 run spans", "1 failed", "1 trace generations",
		"worker lanes", "utilization",
		"queue-wait", "warmup", "measured", "trace-generate",
		"list/none", "list/context[2]", "list/bogus",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("spans output missing %q:\n%s", want, got)
		}
	}
	// The slowest cell leads the table: context[2] at 60ms beats none at 40ms.
	if ci, ni := strings.Index(got, "list/context[2]"), strings.LastIndex(got, "list/none"); ci > ni {
		t.Errorf("slowest-cells table not sorted by duration:\n%s", got)
	}
}

func TestInspectSpansTopLimit(t *testing.T) {
	path := writeSpanFile(t)
	var out bytes.Buffer
	if code := run([]string{"spans", "-top", "1", path}, &out); code != harness.ExitOK {
		t.Fatalf("inspect spans -top 1 exited %d", code)
	}
	got := out.String()
	if !strings.Contains(got, "slowest 1 cells") {
		t.Errorf("-top not honored:\n%s", got)
	}
	// Only the slowest cell appears in the table section.
	if strings.Contains(got[strings.Index(got, "slowest"):], "list/bogus") {
		t.Errorf("-top 1 still lists more than one cell:\n%s", got)
	}
}

func TestInspectSpansErrors(t *testing.T) {
	if code := run([]string{"spans"}, new(bytes.Buffer)); code != harness.ExitUsage {
		t.Errorf("missing file exited %d, want %d", code, harness.ExitUsage)
	}
	bad := filepath.Join(t.TempDir(), "garbage.json")
	if err := os.WriteFile(bad, []byte("not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"spans", bad, "-q"}, new(bytes.Buffer)); code != harness.ExitUsage {
		// flags come before the positional file
		t.Errorf("flags-after-file exited %d, want usage error", code)
	}
	if code := run([]string{"spans", "-q", bad}, new(bytes.Buffer)); code != harness.ExitRunFailed {
		t.Errorf("garbage file exited %d, want %d", code, harness.ExitRunFailed)
	}
	if code := run([]string{"spans", "-q", filepath.Join(t.TempDir(), "nope.json")}, new(bytes.Buffer)); code != harness.ExitRunFailed {
		t.Errorf("missing file exited %d, want %d", code, harness.ExitRunFailed)
	}
}
