package main

// The "serve" subcommand renders LOADGEN_<n>.json artifacts written by
// cmd/loadgen: one file gives the run summary (throughput, latency
// percentiles, degradation rates, the daemon-side scrape); two files give
// a side-by-side comparison with deltas, for before/after load tests.

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"semloc/internal/harness"
	"semloc/internal/loadreport"
	"semloc/internal/obs"
	"semloc/internal/stats"
)

// runServe is the "inspect serve FILE [FILE]" entry point.
func runServe(args []string, stdout io.Writer) int {
	fs := flag.NewFlagSet("inspect serve", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	quiet := fs.Bool("q", false, "suppress informational logging")
	minRatio := fs.Float64("min-rate-ratio", 0,
		"with two artifacts, fail unless B's achieved rate >= ratio * A's (regression gate; 0 disables)")
	if err := fs.Parse(args); err != nil {
		return harness.ExitUsage
	}
	logger := obs.NewLogger(os.Stderr, "inspect", *quiet, false)
	if fs.NArg() < 1 || fs.NArg() > 2 {
		fmt.Fprintln(os.Stderr, "inspect serve: one LOADGEN artifact to render, or two to compare")
		return harness.ExitUsage
	}
	reps := make([]*loadreport.Report, fs.NArg())
	for i, path := range fs.Args() {
		rep, err := loadreport.Load(path)
		if err != nil {
			logger.Error("loading artifact", "path", path, "err", err)
			return harness.ExitRunFailed
		}
		if err := rep.Validate(); err != nil {
			logger.Error("invalid artifact", "path", path, "err", err)
			return harness.ExitRunFailed
		}
		reps[i] = rep
	}
	if len(reps) == 1 {
		if *minRatio > 0 {
			fmt.Fprintln(os.Stderr, "inspect serve: -min-rate-ratio needs two artifacts to compare")
			return harness.ExitUsage
		}
		renderLoadReport(reps[0], fs.Arg(0), stdout)
		return harness.ExitOK
	}
	compareLoadReports(reps[0], reps[1], fs.Arg(0), fs.Arg(1), stdout)
	if *minRatio > 0 {
		a, b := reps[0].AchievedRate, reps[1].AchievedRate
		if b < *minRatio*a {
			fmt.Fprintf(os.Stderr, "inspect serve: RATE GATE FAILED: B %.1f/s < %.2f x A %.1f/s (= %.1f/s)\n",
				b, *minRatio, a, *minRatio*a)
			return harness.ExitRunFailed
		}
		fmt.Fprintf(stdout, "rate gate ok: B %.1f/s >= %.2f x A %.1f/s\n", b, *minRatio, a)
	}
	return harness.ExitOK
}

// fmtNS renders a nanosecond count at a precision matched to its
// magnitude, so microsecond-scale serving latencies stay readable.
func fmtNS(n int64) string {
	d := time.Duration(n)
	switch {
	case d < 10*time.Microsecond:
		return d.Round(10 * time.Nanosecond).String()
	case d < 10*time.Millisecond:
		return d.Round(time.Microsecond).String()
	default:
		return d.Round(100 * time.Microsecond).String()
	}
}

// source names the access stream a run replayed.
func source(r *loadreport.Report) string {
	if r.TraceFile != "" {
		return "trace " + r.TraceFile
	}
	return fmt.Sprintf("workload %s (scale %g, seed %d)", r.Workload, r.Scale, r.Seed)
}

func loop(r *loadreport.Report) string {
	if r.OpenLoop {
		return fmt.Sprintf("open loop @ %g/s", r.TargetRate)
	}
	return "closed loop (saturation)"
}

// batchOf renders a report's request batch size; schema-1 artifacts
// predate the field and implicitly ran 1.
func batchOf(r *loadreport.Report) int {
	if r.Batch < 1 {
		return 1
	}
	return r.Batch
}

func renderLoadReport(r *loadreport.Report, path string, w io.Writer) {
	fmt.Fprintf(w, "loadgen artifact %s (run %d, schema %d, %s/%s %s)\n",
		path, r.Loadgen, r.Schema, r.GOOS, r.GOARCH, r.GoVersion)
	fmt.Fprintf(w, "  %s, %d sessions, batch %d, %s, ran %v\n",
		source(r), r.Sessions, batchOf(r), loop(r), time.Duration(r.DurationNS).Round(time.Millisecond))
	fmt.Fprintf(w, "  decisions %d (%.1f/s), degraded %d (%.2f%%), replayed %d, errors %d\n",
		r.Decisions, r.AchievedRate, r.Degraded, 100*r.DegradedRate, r.Replayed, r.Errors)
	fmt.Fprintf(w, "  busy %d (%.2f%%), retries %d, reconnects %d\n",
		r.Busy, 100*r.BusyRate, r.Retries, r.Reconnects)
	fmt.Fprintf(w, "  client latency: p50 %s  p95 %s  p99 %s  p99.9 %s\n",
		fmtNS(r.Latency.P50NS), fmtNS(r.Latency.P95NS),
		fmtNS(r.Latency.P99NS), fmtNS(r.Latency.P999NS))
	if s := r.Server; s != nil {
		fmt.Fprintf(w, "  server scrape: decisions %d, degraded %d, replayed %d, busy %d\n",
			s.DecisionsTotal, s.DegradedTotal, s.ReplayedTotal, s.BusyTotal)
		mean := int64(0)
		if s.DecisionsTotal > 0 {
			mean = s.FrameLatencySumNS / int64(s.DecisionsTotal)
		}
		fmt.Fprintf(w, "    mean frame latency %s; count-match holds across %d histograms\n",
			fmtNS(mean), len(s.LatencyCounts))
		if b := s.BatchSize; b != nil {
			fmt.Fprintf(w, "    batch size: mean %.1f  p50 %.1f  p95 %.1f across %d frames; coalesced writes %d\n",
				b.Mean, b.P50, b.P95, b.Count, s.CoalescedWritesTotal)
		}
	}
}

// compareLoadReports renders two runs side by side with deltas — the
// before/after view for a load-test regression check.
func compareLoadReports(a, b *loadreport.Report, pathA, pathB string, w io.Writer) {
	fmt.Fprintf(w, "A: %s — %s, %d sessions, batch %d, %s\n", pathA, source(a), a.Sessions, batchOf(a), loop(a))
	fmt.Fprintf(w, "B: %s — %s, %d sessions, batch %d, %s\n", pathB, source(b), b.Sessions, batchOf(b), loop(b))
	if source(a) != source(b) || a.Sessions != b.Sessions || a.OpenLoop != b.OpenLoop {
		fmt.Fprintln(w, "warning: run configurations differ (batch aside); deltas compare unlike runs")
	}
	fmt.Fprintln(w)

	t := stats.NewTable("load-test comparison", "metric", "A", "B", "delta")
	pct := func(a, b float64) string {
		if a == 0 {
			return "n/a"
		}
		return fmt.Sprintf("%+.1f%%", 100*(b-a)/a)
	}
	rate := func(v float64) string { return fmt.Sprintf("%.1f/s", v) }
	t.AddRow("achieved rate", rate(a.AchievedRate), rate(b.AchievedRate),
		pct(a.AchievedRate, b.AchievedRate))
	for _, row := range []struct {
		name string
		a, b int64
	}{
		{"latency p50", a.Latency.P50NS, b.Latency.P50NS},
		{"latency p95", a.Latency.P95NS, b.Latency.P95NS},
		{"latency p99", a.Latency.P99NS, b.Latency.P99NS},
		{"latency p99.9", a.Latency.P999NS, b.Latency.P999NS},
	} {
		t.AddRow(row.name, fmtNS(row.a), fmtNS(row.b), pct(float64(row.a), float64(row.b)))
	}
	count := func(v uint64) string { return fmt.Sprintf("%d", v) }
	for _, row := range []struct {
		name string
		a, b uint64
	}{
		{"decisions", a.Decisions, b.Decisions},
		{"degraded", a.Degraded, b.Degraded},
		{"busy", a.Busy, b.Busy},
		{"errors", a.Errors, b.Errors},
		{"retries", a.Retries, b.Retries},
	} {
		t.AddRow(row.name, count(row.a), count(row.b), pct(float64(row.a), float64(row.b)))
	}
	if a.Server != nil && b.Server != nil {
		meanNS := func(s *loadreport.ServerScrape) int64 {
			if s.DecisionsTotal == 0 {
				return 0
			}
			return s.FrameLatencySumNS / int64(s.DecisionsTotal)
		}
		ma, mb := meanNS(a.Server), meanNS(b.Server)
		t.AddRow("server mean frame", fmtNS(ma), fmtNS(mb), pct(float64(ma), float64(mb)))
	}
	t.Render(w)
}
