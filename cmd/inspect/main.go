// Command inspect renders the telemetry a run left behind — the per-run
// JSON artifacts exp.Runner writes (see exp.RunArtifact) and the JSONL
// decision traces — into plottable CSV/JSON: the learning curve (IPC,
// queue-hit rate, MPKI, CST occupancy over demand accesses) and the
// evolution of the top learned deltas.
//
// Usage:
//
//	inspect -run results/obs/list__context.json                # summary
//	inspect -run ... -curve -format csv -out curve.csv         # learning curve
//	inspect -run ... -deltas                                   # top-delta evolution
//	inspect -run ... -validate                                 # parse + validate, exit 0/1
//	inspect -decisions results/obs/list__context.decisions.jsonl
//	inspect spans sweep.trace.json                             # -spans file summary
//	inspect spans -top 20 sweep.trace.json
//	inspect serve LOADGEN_1.json                               # load-test summary
//	inspect serve LOADGEN_1.json LOADGEN_2.json                # compare two runs
//	inspect learner -run results/obs/list__context.json        # learner-health report
//	inspect learner -run ... -curve -format csv                # learner-health curve
//	inspect learner -run ... -check                            # anomaly gate, exit 0/1
//	inspect learner -explain explain.json                      # pretty-print a prefetchd explain dump
//
// The spans subcommand renders a span file recorded with a command's -spans
// flag (the same Chrome trace-event JSON Perfetto loads): per-cell phase
// timings (decode, queue-wait, warmup, measured), the slowest cells, and
// worker-lane utilization. Span files from prefetchd get the serving-path
// breakdown instead (decode, queue-wait, decide, write per request).
//
// The serve subcommand renders LOADGEN_<n>.json artifacts from cmd/loadgen:
// achieved throughput, client latency percentiles, degradation rates, and
// the daemon-side scrape; with two artifacts it prints a delta table.
//
// The learner subcommand renders the learner-introspection layer: the
// health report and anomaly gate over an artifact's final counters, the
// per-interval learner-health curve, and a pretty-printer for explain
// dumps fetched live from prefetchd (the explain protocol frame).
//
// Exit codes follow the harness contract: 0 ok, 1 the artifact or trace
// is missing/corrupt, 2 usage error.
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"

	"semloc/internal/exp"
	"semloc/internal/harness"
	"semloc/internal/obs"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout)) }

// run is the testable entry point: it parses args with its own flag set
// and writes primary output to stdout (unless -out redirects it).
func run(args []string, stdout io.Writer) int {
	if len(args) > 0 && args[0] == "spans" {
		return runSpans(args[1:], stdout)
	}
	if len(args) > 0 && args[0] == "serve" {
		return runServe(args[1:], stdout)
	}
	if len(args) > 0 && args[0] == "learner" {
		return runLearner(args[1:], stdout)
	}
	fs := flag.NewFlagSet("inspect", flag.ContinueOnError)
	var (
		runPath   = fs.String("run", "", "per-run artifact JSON (written by exp.Runner / -obs-dir)")
		decisions = fs.String("decisions", "", "decision trace JSONL to summarize")
		curve     = fs.Bool("curve", false, "emit the learning curve")
		deltas    = fs.Bool("deltas", false, "emit the top-delta evolution")
		validate  = fs.Bool("validate", false, "validate the artifact (requires a non-empty telemetry series) and exit")
		format    = fs.String("format", "csv", "output format: csv or json")
		outPath   = fs.String("out", "", "output path (default stdout)")
		quiet     = fs.Bool("q", false, "suppress informational logging")
	)
	if err := fs.Parse(args); err != nil {
		return harness.ExitUsage
	}
	logger := obs.NewLogger(os.Stderr, "inspect", *quiet, false)

	if *runPath == "" && *decisions == "" {
		fmt.Fprintln(os.Stderr, "inspect: -run or -decisions required")
		return harness.ExitUsage
	}
	if *format != "csv" && *format != "json" {
		fmt.Fprintln(os.Stderr, "inspect: -format must be csv or json")
		return harness.ExitUsage
	}

	out := stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			logger.Error("creating output", "err", err)
			return harness.ExitRunFailed
		}
		defer f.Close()
		out = f
	}

	if *decisions != "" {
		if err := summarizeDecisions(*decisions, *format, out); err != nil {
			logger.Error("decision trace", "path", *decisions, "err", err)
			return harness.ExitRunFailed
		}
		return harness.ExitOK
	}

	art, err := exp.LoadArtifact(*runPath)
	if err != nil {
		logger.Error("loading artifact", "path", *runPath, "err", err)
		return harness.ExitRunFailed
	}
	logger.Info("artifact loaded", "workload", art.Workload, "prefetcher", art.Prefetcher,
		"ipc", art.IPC, "samples", seriesLen(art))

	switch {
	case *validate:
		if err := validateArtifact(art); err != nil {
			logger.Error("validation failed", "err", err)
			return harness.ExitRunFailed
		}
		fmt.Fprintf(out, "ok: %s/%s, %d samples, %d decisions\n",
			art.Workload, art.Prefetcher, seriesLen(art), art.Result.Series.Decisions)
	case *curve:
		err = renderCurve(art, *format, out)
	case *deltas:
		err = renderDeltas(art, *format, out)
	default:
		err = renderSummary(art, out)
	}
	if err != nil {
		logger.Error("rendering", "err", err)
		return harness.ExitRunFailed
	}
	return harness.ExitOK
}

func seriesLen(art *exp.RunArtifact) int {
	if art.Result == nil || art.Result.Series == nil {
		return 0
	}
	return len(art.Result.Series.Samples)
}

// validateArtifact is the round-trip gate: the artifact must parse (done
// by the caller), carry a telemetry series, and the series must satisfy
// its structural invariants.
func validateArtifact(art *exp.RunArtifact) error {
	if err := art.Validate(); err != nil {
		return err
	}
	s := art.Result.Series
	if s == nil {
		return fmt.Errorf("inspect: artifact has no telemetry series (was the run sampled?)")
	}
	return s.Validate()
}

// series extracts the artifact's time series or explains its absence.
func series(art *exp.RunArtifact) (*obs.Series, error) {
	if art.Result == nil || art.Result.Series == nil {
		return nil, fmt.Errorf("inspect: artifact has no telemetry series (run with sampling enabled)")
	}
	return art.Result.Series, nil
}

// renderCurve emits the learning curve, one row per interval sample.
func renderCurve(art *exp.RunArtifact, format string, w io.Writer) error {
	s, err := series(art)
	if err != nil {
		return err
	}
	if format == "json" {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(s)
	}
	cw := csv.NewWriter(w)
	header := []string{
		"index", "cycles", "instructions", "ipc", "interval_ipc",
		"l1_mpki", "l2_mpki", "accesses", "queue_hits", "queue_hit_rate",
		"predictions", "real", "shadow", "expired",
		"accuracy", "epsilon", "cst_entries", "cst_links", "cst_mean_score",
		"activations", "deactivations",
		"accurate", "late", "evicted", "useless",
		"explores", "exploits", "suppressed",
		"pos_rewards", "neg_rewards", "zero_rewards",
		"cst_insertions", "cst_replacements", "cst_rejects",
		"cst_positive_links", "cst_saturated_links",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	u := func(v uint64) string { return strconv.FormatUint(v, 10) }
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }
	for i := range s.Samples {
		sm := &s.Samples[i]
		row := []string{
			u(sm.Index), u(sm.Cycles), u(sm.Instructions), f(sm.IPC), f(sm.IntervalIPC),
			f(sm.L1MPKI), f(sm.L2MPKI), u(sm.Accesses), u(sm.QueueHits), f(sm.QueueHitRate),
			u(sm.Predictions), u(sm.Real), u(sm.Shadow), u(sm.Expired),
			f(sm.Accuracy), f(sm.Epsilon), strconv.Itoa(sm.CSTEntries), strconv.Itoa(sm.CSTLinks), f(sm.CSTMeanScore),
			u(sm.Activations), u(sm.Deactivations),
			u(sm.Accurate), u(sm.Late), u(sm.Evicted), u(sm.Useless),
			u(sm.Explores), u(sm.Exploits), u(sm.Suppressed),
			u(sm.PosRewards), u(sm.NegRewards), u(sm.ZeroRewards),
			u(sm.CSTInsertions), u(sm.CSTReplacements), u(sm.CSTRejects),
			strconv.Itoa(sm.CSTPositiveLinks), strconv.Itoa(sm.CSTSaturatedLinks),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// deltaRow is one point of the top-delta evolution (long format: easy to
// pivot in any plotting tool).
type deltaRow struct {
	Index uint64 `json:"index"`
	Rank  int    `json:"rank"`
	Delta int8   `json:"delta"`
	Count int    `json:"count"`
}

// renderDeltas emits how the most frequent learned deltas evolve over the
// run, one row per (sample, rank).
func renderDeltas(art *exp.RunArtifact, format string, w io.Writer) error {
	s, err := series(art)
	if err != nil {
		return err
	}
	var rows []deltaRow
	for i := range s.Samples {
		sm := &s.Samples[i]
		for rank, d := range sm.TopDeltas {
			rows = append(rows, deltaRow{Index: sm.Index, Rank: rank + 1, Delta: d.Delta, Count: d.Count})
		}
	}
	if len(rows) == 0 {
		return fmt.Errorf("inspect: series carries no top-delta data (prefetcher %q exports no learner state)", art.Prefetcher)
	}
	if format == "json" {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(rows)
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"index", "rank", "delta", "count"}); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write([]string{
			strconv.FormatUint(r.Index, 10), strconv.Itoa(r.Rank),
			strconv.Itoa(int(r.Delta)), strconv.Itoa(r.Count),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// renderSummary prints the human-oriented overview.
func renderSummary(art *exp.RunArtifact, w io.Writer) error {
	fmt.Fprintf(w, "run %s/%s (scale %g, seed %d)\n", art.Workload, art.Prefetcher, art.Scale, art.Seed)
	fmt.Fprintf(w, "  IPC %.4f  L1 MPKI %.2f  L2 MPKI %.2f\n", art.IPC, art.L1MPKI, art.L2MPKI)
	if m := art.Metrics; m != nil {
		fmt.Fprintf(w, "  accesses %d  predictions %d (real %d, shadow %d)  queue hits %d  expired %d\n",
			m.Accesses, m.Predictions, m.RealPrefetches, m.ShadowPrefetches, m.QueueHits, m.Expired)
	}
	if ts := art.TableStats; ts != nil {
		fmt.Fprintf(w, "  CST: %d entries, %d links, mean score %.2f, %d positive, %d saturated\n",
			ts.Entries, ts.Links, ts.MeanScore, ts.PositiveLinks, ts.SaturatedLinks)
		for _, d := range ts.TopDeltas {
			fmt.Fprintf(w, "    delta %+d x%d\n", d.Delta, d.Count)
		}
	}
	if s := art.Result.Series; s != nil {
		fmt.Fprintf(w, "  series: %d samples at interval %d (base %d), warmup at %d, %d traced decisions\n",
			len(s.Samples), s.Interval, s.BaseInterval, s.WarmupIndex, s.Decisions)
	} else {
		fmt.Fprintln(w, "  series: none (run without interval sampling)")
	}
	return nil
}

// decisionSummary aggregates a JSONL decision trace.
type decisionSummary struct {
	Events      int            `json:"events"`
	ByKind      map[string]int `json:"by_kind"`
	RealDecides int            `json:"real_decides"`
	Explores    int            `json:"explores"`
	MeanReward  float64        `json:"mean_reward"`
	TopChosen   []deltaTally   `json:"top_chosen"`
}

type deltaTally struct {
	Delta int8 `json:"delta"`
	Count int  `json:"count"`
}

func summarizeDecisions(path, format string, w io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	evs, err := obs.ReadDecisions(f)
	if err != nil {
		return err
	}
	if len(evs) == 0 {
		return fmt.Errorf("inspect: empty decision trace %s", path)
	}
	sum := decisionSummary{Events: len(evs), ByKind: map[string]int{}}
	chosen := map[int8]int{}
	var rewardSum, rewards int
	for _, ev := range evs {
		sum.ByKind[ev.Kind]++
		switch ev.Kind {
		case obs.KindDecide:
			chosen[ev.Delta]++
			if ev.Real {
				sum.RealDecides++
			}
			if ev.Explore {
				sum.Explores++
			}
		case obs.KindReward, obs.KindExpire:
			rewardSum += int(ev.Reward)
			rewards++
		}
	}
	if rewards > 0 {
		sum.MeanReward = float64(rewardSum) / float64(rewards)
	}
	for d, c := range chosen {
		sum.TopChosen = append(sum.TopChosen, deltaTally{Delta: d, Count: c})
	}
	sort.Slice(sum.TopChosen, func(i, j int) bool {
		if sum.TopChosen[i].Count != sum.TopChosen[j].Count {
			return sum.TopChosen[i].Count > sum.TopChosen[j].Count
		}
		return sum.TopChosen[i].Delta < sum.TopChosen[j].Delta
	})
	if len(sum.TopChosen) > 8 {
		sum.TopChosen = sum.TopChosen[:8]
	}
	if format == "json" {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(sum)
	}
	fmt.Fprintf(w, "decision trace %s: %d events\n", path, sum.Events)
	for _, k := range []string{obs.KindDecide, obs.KindReward, obs.KindExpire} {
		fmt.Fprintf(w, "  %-7s %d\n", k, sum.ByKind[k])
	}
	fmt.Fprintf(w, "  real decides %d, explores %d, mean reward %.2f\n", sum.RealDecides, sum.Explores, sum.MeanReward)
	for _, d := range sum.TopChosen {
		fmt.Fprintf(w, "  chosen delta %+d x%d\n", d.Delta, d.Count)
	}
	return nil
}
