package main

// The "spans" subcommand renders a span file recorded by a command's -spans
// flag (Chrome trace-event JSON, the same file Perfetto loads) as text: a
// wall-clock and worker-utilization summary, the aggregate phase breakdown
// (queue-wait vs simulation time), and the slowest cells with their
// per-phase timings.

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"semloc/internal/harness"
	"semloc/internal/obs"
	"semloc/internal/stats"
)

// runSpans is the "inspect spans FILE" entry point.
func runSpans(args []string, stdout io.Writer) int {
	fs := flag.NewFlagSet("inspect spans", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	var (
		top   = fs.Int("top", 10, "slowest cells to list")
		quiet = fs.Bool("q", false, "suppress informational logging")
	)
	if err := fs.Parse(args); err != nil {
		return harness.ExitUsage
	}
	logger := obs.NewLogger(os.Stderr, "inspect", *quiet, false)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "inspect spans: exactly one span file required")
		return harness.ExitUsage
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		logger.Error("opening span file", "err", err)
		return harness.ExitRunFailed
	}
	defer f.Close()
	spans, err := obs.ReadChromeTrace(f)
	if err != nil {
		logger.Error("parsing span file", "path", fs.Arg(0), "err", err)
		return harness.ExitRunFailed
	}
	renderSpans(spans, fs.Arg(0), *top, stdout)
	return harness.ExitOK
}

// phaseDur sums a span's phases with the given name.
func phaseDur(s *obs.Span, name string) time.Duration {
	var d time.Duration
	for _, p := range s.Phases {
		if p.Name == name {
			d += p.Dur
		}
	}
	return d
}

func renderSpans(spans []obs.Span, path string, top int, w io.Writer) {
	var runs []obs.Span
	var traceGen, wall, busy time.Duration
	traces, failed := 0, 0
	for _, s := range spans {
		if end := s.Start + s.Dur; end > wall {
			wall = end
		}
		busy += s.Dur
		switch s.Cat {
		case obs.CatTrace:
			traces++
			traceGen += s.Dur
		default:
			runs = append(runs, s)
			if s.Err {
				failed++
			}
		}
	}
	lanes := obs.Lanes(spans)
	workers := 0
	for _, l := range lanes {
		if l+1 > workers {
			workers = l + 1
		}
	}
	util := 0.0
	if workers > 0 && wall > 0 {
		util = busy.Seconds() / (wall.Seconds() * float64(workers))
	}
	fmt.Fprintf(w, "span file %s: %d run spans (%d failed), %d trace generations\n",
		path, len(runs), failed, traces)
	fmt.Fprintf(w, "  wall %v, busy %v across %d worker lanes (utilization %.0f%%)\n",
		wall.Round(time.Millisecond), busy.Round(time.Millisecond), workers, util*100)

	// Aggregate phase breakdown: where did the busy time go?
	var decode, queue, warmup, measured time.Duration
	for i := range runs {
		decode += phaseDur(&runs[i], obs.PhaseDecode)
		queue += phaseDur(&runs[i], obs.PhaseQueueWait)
		warmup += phaseDur(&runs[i], obs.PhaseWarmup)
		measured += phaseDur(&runs[i], obs.PhaseMeasured)
	}
	pct := func(d time.Duration) string {
		if busy == 0 {
			return "0%"
		}
		return fmt.Sprintf("%.0f%%", 100*d.Seconds()/busy.Seconds())
	}
	bt := stats.NewTable("phase breakdown (totals across all spans)",
		"phase", "total", "of busy")
	bt.AddRow("trace-generate", traceGen.Round(time.Millisecond).String(), pct(traceGen))
	bt.AddRow("decode-wait", decode.Round(time.Millisecond).String(), pct(decode))
	bt.AddRow("queue-wait", queue.Round(time.Millisecond).String(), pct(queue))
	bt.AddRow("warmup", warmup.Round(time.Millisecond).String(), pct(warmup))
	bt.AddRow("measured", measured.Round(time.Millisecond).String(), pct(measured))
	fmt.Fprintln(w)
	bt.Render(w)

	sort.Slice(runs, func(i, j int) bool { return runs[i].Dur > runs[j].Dur })
	if top > len(runs) {
		top = len(runs)
	}
	st := stats.NewTable(fmt.Sprintf("slowest %d cells", top),
		"cell", "total", "decode", "queue", "warmup", "measured", "err")
	ms := func(d time.Duration) string { return d.Round(time.Millisecond).String() }
	for i := 0; i < top; i++ {
		s := &runs[i]
		st.AddRow(s.Cell(), ms(s.Dur), ms(phaseDur(s, obs.PhaseDecode)),
			ms(phaseDur(s, obs.PhaseQueueWait)), ms(phaseDur(s, obs.PhaseWarmup)),
			ms(phaseDur(s, obs.PhaseMeasured)), s.Err)
	}
	fmt.Fprintln(w)
	st.Render(w)
}
