package main

// The "spans" subcommand renders a span file recorded by a command's -spans
// flag (Chrome trace-event JSON, the same file Perfetto loads) as text: a
// wall-clock and worker-utilization summary, the aggregate phase breakdown
// (queue-wait vs simulation time), and the slowest cells with their
// per-phase timings.

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"semloc/internal/harness"
	"semloc/internal/obs"
	"semloc/internal/stats"
)

// runSpans is the "inspect spans FILE" entry point.
func runSpans(args []string, stdout io.Writer) int {
	fs := flag.NewFlagSet("inspect spans", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	var (
		top   = fs.Int("top", 10, "slowest cells to list")
		quiet = fs.Bool("q", false, "suppress informational logging")
	)
	if err := fs.Parse(args); err != nil {
		return harness.ExitUsage
	}
	logger := obs.NewLogger(os.Stderr, "inspect", *quiet, false)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "inspect spans: exactly one span file required")
		return harness.ExitUsage
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		logger.Error("opening span file", "err", err)
		return harness.ExitRunFailed
	}
	defer f.Close()
	spans, err := obs.ReadChromeTrace(f)
	if err != nil {
		logger.Error("parsing span file", "path", fs.Arg(0), "err", err)
		return harness.ExitRunFailed
	}
	renderSpans(spans, fs.Arg(0), *top, stdout)
	return harness.ExitOK
}

// phaseDur sums a span's phases with the given name.
func phaseDur(s *obs.Span, name string) time.Duration {
	var d time.Duration
	for _, p := range s.Phases {
		if p.Name == name {
			d += p.Dur
		}
	}
	return d
}

func renderSpans(spans []obs.Span, path string, top int, w io.Writer) {
	var runs, serves []obs.Span
	var traceGen, wall, busy time.Duration
	traces, failed := 0, 0
	for _, s := range spans {
		if end := s.Start + s.Dur; end > wall {
			wall = end
		}
		busy += s.Dur
		switch s.Cat {
		case obs.CatTrace:
			traces++
			traceGen += s.Dur
		case obs.CatServe:
			serves = append(serves, s)
		default:
			runs = append(runs, s)
			if s.Err {
				failed++
			}
		}
	}
	// A prefetchd span file holds per-request serving spans, not
	// simulation cells — render the serving-path view instead.
	if len(serves) > 0 && len(runs) == 0 {
		renderServeSpans(serves, path, wall, top, w)
		return
	}
	lanes := obs.Lanes(spans)
	workers := 0
	for _, l := range lanes {
		if l+1 > workers {
			workers = l + 1
		}
	}
	util := 0.0
	if workers > 0 && wall > 0 {
		util = busy.Seconds() / (wall.Seconds() * float64(workers))
	}
	fmt.Fprintf(w, "span file %s: %d run spans (%d failed), %d trace generations\n",
		path, len(runs), failed, traces)
	fmt.Fprintf(w, "  wall %v, busy %v across %d worker lanes (utilization %.0f%%)\n",
		wall.Round(time.Millisecond), busy.Round(time.Millisecond), workers, util*100)

	// Aggregate phase breakdown: where did the busy time go?
	var decode, queue, warmup, measured time.Duration
	for i := range runs {
		decode += phaseDur(&runs[i], obs.PhaseDecode)
		queue += phaseDur(&runs[i], obs.PhaseQueueWait)
		warmup += phaseDur(&runs[i], obs.PhaseWarmup)
		measured += phaseDur(&runs[i], obs.PhaseMeasured)
	}
	pct := func(d time.Duration) string {
		if busy == 0 {
			return "0%"
		}
		return fmt.Sprintf("%.0f%%", 100*d.Seconds()/busy.Seconds())
	}
	bt := stats.NewTable("phase breakdown (totals across all spans)",
		"phase", "total", "of busy")
	bt.AddRow("trace-generate", traceGen.Round(time.Millisecond).String(), pct(traceGen))
	bt.AddRow("decode-wait", decode.Round(time.Millisecond).String(), pct(decode))
	bt.AddRow("queue-wait", queue.Round(time.Millisecond).String(), pct(queue))
	bt.AddRow("warmup", warmup.Round(time.Millisecond).String(), pct(warmup))
	bt.AddRow("measured", measured.Round(time.Millisecond).String(), pct(measured))
	fmt.Fprintln(w)
	bt.Render(w)

	sort.Slice(runs, func(i, j int) bool { return runs[i].Dur > runs[j].Dur })
	if top > len(runs) {
		top = len(runs)
	}
	st := stats.NewTable(fmt.Sprintf("slowest %d cells", top),
		"cell", "total", "decode", "queue", "warmup", "measured", "err")
	ms := func(d time.Duration) string { return d.Round(time.Millisecond).String() }
	for i := 0; i < top; i++ {
		s := &runs[i]
		st.AddRow(s.Cell(), ms(s.Dur), ms(phaseDur(s, obs.PhaseDecode)),
			ms(phaseDur(s, obs.PhaseQueueWait)), ms(phaseDur(s, obs.PhaseWarmup)),
			ms(phaseDur(s, obs.PhaseMeasured)), s.Err)
	}
	fmt.Fprintln(w)
	st.Render(w)
}

// renderServeSpans is the serving-path view of a span file: sampled
// per-request spans from prefetchd, with the decode / queue-wait /
// decide / write stage breakdown instead of simulation phases.
func renderServeSpans(serves []obs.Span, path string, wall time.Duration, top int, w io.Writer) {
	fmt.Fprintf(w, "span file %s: %d sampled request spans across %v\n",
		path, len(serves), wall.Round(time.Millisecond))

	var decode, queue, decide, write, total time.Duration
	sessions := map[string]int{}
	for i := range serves {
		s := &serves[i]
		total += s.Dur
		decode += phaseDur(s, obs.PhaseDecode)
		queue += phaseDur(s, obs.PhaseQueueWait)
		decide += phaseDur(s, obs.PhaseDecide)
		write += phaseDur(s, obs.PhaseWrite)
		sessions[s.Workload]++
	}
	fmt.Fprintf(w, "  %d session(s), mean sampled request %v\n",
		len(sessions), (total / time.Duration(len(serves))).Round(time.Microsecond))
	pct := func(d time.Duration) string {
		if total == 0 {
			return "0%"
		}
		return fmt.Sprintf("%.0f%%", 100*d.Seconds()/total.Seconds())
	}
	us := func(d time.Duration) string { return d.Round(time.Microsecond).String() }
	bt := stats.NewTable("stage breakdown (totals across sampled requests)",
		"stage", "total", "of request time")
	bt.AddRow("decode", us(decode), pct(decode))
	bt.AddRow("queue-wait", us(queue), pct(queue))
	bt.AddRow("decide", us(decide), pct(decide))
	bt.AddRow("write", us(write), pct(write))
	fmt.Fprintln(w)
	bt.Render(w)

	sort.Slice(serves, func(i, j int) bool { return serves[i].Dur > serves[j].Dur })
	if top > len(serves) {
		top = len(serves)
	}
	st := stats.NewTable(fmt.Sprintf("slowest %d sampled requests", top),
		"session", "seq", "total", "decode", "queue", "decide", "write")
	for i := 0; i < top; i++ {
		s := &serves[i]
		st.AddRow(s.Workload, s.Point, us(s.Dur), us(phaseDur(s, obs.PhaseDecode)),
			us(phaseDur(s, obs.PhaseQueueWait)), us(phaseDur(s, obs.PhaseDecide)),
			us(phaseDur(s, obs.PhaseWrite)))
	}
	fmt.Fprintln(w)
	st.Render(w)
}
