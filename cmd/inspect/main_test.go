package main

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"semloc/internal/exp"
	"semloc/internal/harness"
	"semloc/internal/obs"
)

// makeArtifacts runs one small instrumented simulation and returns the
// artifact directory. Shared across tests via sync in exp.Runner is not
// needed here — the run is tiny.
func makeArtifacts(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	opts := exp.DefaultOptions()
	opts.Scale = 0.05
	opts.OutDir = dir
	opts.Telemetry = obs.Config{Interval: 1024, DecisionRate: 16}
	r := exp.NewRunner(opts)
	if _, err := r.Result("list", "context"); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestRoundTripExitCodes is the acceptance gate: a run's artifact must
// emit → parse → validate through the CLI with exit code 0.
func TestRoundTripExitCodes(t *testing.T) {
	dir := makeArtifacts(t)
	art := exp.ArtifactPath(dir, "list", "context")

	var out bytes.Buffer
	if code := run([]string{"-q", "-run", art, "-validate"}, &out); code != harness.ExitOK {
		t.Fatalf("-validate exit %d, output %q", code, out.String())
	}
	if out.Len() == 0 {
		t.Fatal("-validate printed nothing")
	}

	out.Reset()
	if code := run([]string{"-q", "-run", art}, &out); code != harness.ExitOK {
		t.Fatalf("summary exit %d", code)
	}
	if !bytes.Contains(out.Bytes(), []byte("list/context")) {
		t.Fatalf("summary missing run identity: %q", out.String())
	}

	// Failure paths keep the harness contract.
	if code := run([]string{"-q"}, &out); code != harness.ExitUsage {
		t.Fatalf("no input: exit %d, want usage", code)
	}
	if code := run([]string{"-q", "-run", art, "-format", "xml"}, &out); code != harness.ExitUsage {
		t.Fatalf("bad format: exit %d, want usage", code)
	}
	if code := run([]string{"-q", "-run", filepath.Join(dir, "nope.json")}, &out); code != harness.ExitRunFailed {
		t.Fatalf("missing artifact: exit %d, want run-failed", code)
	}
}

// TestCurveCSVMatchesSeries checks the CSV learning curve row-for-row
// against the series inside the artifact.
func TestCurveCSVMatchesSeries(t *testing.T) {
	dir := makeArtifacts(t)
	artPath := exp.ArtifactPath(dir, "list", "context")
	art, err := exp.LoadArtifact(artPath)
	if err != nil {
		t.Fatal(err)
	}
	series := art.Result.Series
	if series == nil || len(series.Samples) == 0 {
		t.Fatal("instrumented run produced no series")
	}

	var out bytes.Buffer
	if code := run([]string{"-q", "-run", artPath, "-curve"}, &out); code != harness.ExitOK {
		t.Fatalf("curve exit %d", code)
	}
	rows, err := csv.NewReader(&out).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(series.Samples)+1 {
		t.Fatalf("%d CSV rows for %d samples", len(rows)-1, len(series.Samples))
	}
	if rows[0][0] != "index" {
		t.Fatalf("header %v", rows[0])
	}
	for i, sm := range series.Samples {
		idx, err := strconv.ParseUint(rows[i+1][0], 10, 64)
		if err != nil || idx != sm.Index {
			t.Fatalf("row %d index %q, want %d (%v)", i, rows[i+1][0], sm.Index, err)
		}
	}

	// JSON mode must round-trip back into a valid Series.
	out.Reset()
	if code := run([]string{"-q", "-run", artPath, "-curve", "-format", "json"}, &out); code != harness.ExitOK {
		t.Fatalf("curve json exit %d", code)
	}
	var back obs.Series
	if err := json.Unmarshal(out.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(back.Samples) != len(series.Samples) {
		t.Fatalf("json round trip lost samples: %d != %d", len(back.Samples), len(series.Samples))
	}
}

// TestDeltasAndDecisions covers the top-delta evolution and decision-trace
// summary renderings.
func TestDeltasAndDecisions(t *testing.T) {
	dir := makeArtifacts(t)
	artPath := exp.ArtifactPath(dir, "list", "context")

	var out bytes.Buffer
	if code := run([]string{"-q", "-run", artPath, "-deltas"}, &out); code != harness.ExitOK {
		t.Fatalf("deltas exit %d", code)
	}
	rows, err := csv.NewReader(&out).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 2 {
		t.Fatal("no delta evolution rows")
	}
	for _, row := range rows[1:] {
		if len(row) != 4 {
			t.Fatalf("delta row shape %v", row)
		}
	}

	out.Reset()
	decPath := exp.DecisionsPath(dir, "list", "context")
	if code := run([]string{"-q", "-decisions", decPath, "-format", "json"}, &out); code != harness.ExitOK {
		t.Fatalf("decisions exit %d", code)
	}
	var sum decisionSummary
	if err := json.Unmarshal(out.Bytes(), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Events == 0 || sum.ByKind[obs.KindDecide] == 0 {
		t.Fatalf("decision summary empty: %+v", sum)
	}
	art, err := exp.LoadArtifact(artPath)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(sum.Events) != art.Result.Series.Decisions {
		t.Fatalf("summary events %d, series recorded %d", sum.Events, art.Result.Series.Decisions)
	}
}

// TestOutFlagWritesFile checks -out lands the rendering on disk.
func TestOutFlagWritesFile(t *testing.T) {
	dir := makeArtifacts(t)
	artPath := exp.ArtifactPath(dir, "list", "context")
	outFile := filepath.Join(t.TempDir(), "curve.csv")

	var out bytes.Buffer
	if code := run([]string{"-q", "-run", artPath, "-curve", "-out", outFile}, &out); code != harness.ExitOK {
		t.Fatalf("exit %d", code)
	}
	data, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(data, []byte("index,")) {
		t.Fatalf("unexpected file contents: %q", data[:min(len(data), 40)])
	}
	if out.Len() != 0 {
		t.Fatalf("stdout not empty with -out: %q", out.String())
	}
}
