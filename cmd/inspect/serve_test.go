package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"semloc/internal/harness"
	"semloc/internal/loadreport"
	"semloc/internal/obs"
)

// writeLoadReport writes a small, valid LOADGEN artifact.
func writeLoadReport(t *testing.T, name string, mutate func(*loadreport.Report)) string {
	t.Helper()
	rep := &loadreport.Report{
		Loadgen: 1, Schema: loadreport.Schema,
		Workload: "list", Scale: 0.1, Seed: 1,
		Sessions: 4, Batch: 1, DurationNS: int64(10 * time.Second),
		GoVersion: "go1.x", GOOS: "linux", GOARCH: "amd64",
		Decisions: 10000, Degraded: 20, Replayed: 3,
		AchievedRate: 1000, DegradedRate: 0.002,
		Latency: loadreport.Percentiles{
			P50NS: 80_000, P95NS: 210_000, P99NS: 480_000, P999NS: 1_200_000,
		},
		Server: &loadreport.ServerScrape{
			DecisionsTotal: 9977, DegradedTotal: 20, ReplayedTotal: 3,
			LatencyCounts: map[string]uint64{
				"serve_decode_latency": 9977, "serve_queue_wait_latency": 9977,
				"serve_decide_latency": 9977, "serve_write_latency": 9977,
				"serve_frame_latency": 9977,
			},
			FrameLatencySumNS: 9977 * 90_000,
		},
	}
	if mutate != nil {
		mutate(rep)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := loadreport.WriteAndVerify(rep, path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestInspectServeSingle(t *testing.T) {
	path := writeLoadReport(t, "LOADGEN_1.json", nil)
	var out bytes.Buffer
	if code := run([]string{"serve", path}, &out); code != harness.ExitOK {
		t.Fatalf("inspect serve exited %d:\n%s", code, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"workload list", "4 sessions", "closed loop",
		"decisions 10000 (1000.0/s)", "degraded 20 (0.20%)",
		"p50 80µs", "p99 480µs", "p99.9 1.2ms",
		"server scrape: decisions 9977",
		"mean frame latency 90µs", "5 histograms",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("serve output missing %q:\n%s", want, got)
		}
	}
}

func TestInspectServeCompare(t *testing.T) {
	a := writeLoadReport(t, "LOADGEN_1.json", nil)
	b := writeLoadReport(t, "LOADGEN_2.json", func(r *loadreport.Report) {
		r.Loadgen = 2
		r.AchievedRate = 1200
		r.Latency.P99NS = 600_000 // +25% over A's 480µs
	})
	var out bytes.Buffer
	if code := run([]string{"serve", a, b}, &out); code != harness.ExitOK {
		t.Fatalf("inspect serve compare exited %d:\n%s", code, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"load-test comparison",
		"achieved rate", "+20.0%", // 1000 → 1200
		"latency p99", "+25.0%", // 480µs → 600µs
		"server mean frame",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("comparison missing %q:\n%s", want, got)
		}
	}
	// Identical configs: no unlike-runs warning.
	if strings.Contains(got, "warning") {
		t.Errorf("spurious config warning for identical configs:\n%s", got)
	}

	// Unlike configs warn.
	c := writeLoadReport(t, "LOADGEN_3.json", func(r *loadreport.Report) {
		r.Sessions = 8
	})
	out.Reset()
	if code := run([]string{"serve", a, c}, &out); code != harness.ExitOK {
		t.Fatalf("inspect serve compare exited %d", code)
	}
	if !strings.Contains(out.String(), "warning: run configurations differ") {
		t.Errorf("no warning comparing 4-session vs 8-session runs:\n%s", out.String())
	}
}

func TestInspectServeErrors(t *testing.T) {
	good := writeLoadReport(t, "LOADGEN_1.json", nil)
	if code := run([]string{"serve"}, new(bytes.Buffer)); code != harness.ExitUsage {
		t.Errorf("no file exited %d, want usage", code)
	}
	if code := run([]string{"serve", good, good, good}, new(bytes.Buffer)); code != harness.ExitUsage {
		t.Errorf("three files exited %d, want usage", code)
	}
	if code := run([]string{"serve", "-q", filepath.Join(t.TempDir(), "nope.json")}, new(bytes.Buffer)); code != harness.ExitRunFailed {
		t.Errorf("missing file exited %d, want run-failed", code)
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"loadgen":1,"schema":99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"serve", "-q", bad}, new(bytes.Buffer)); code != harness.ExitRunFailed {
		t.Errorf("invalid artifact exited %d, want run-failed", code)
	}
}

// TestInspectSpansServeFile: a span file holding prefetchd request spans
// renders the serving-path stage breakdown, not simulation phases.
func TestInspectSpansServeFile(t *testing.T) {
	rec := obs.NewSpanRecorder()
	us := func(n int) time.Duration { return time.Duration(n) * time.Microsecond }
	for i, dur := range []int{120, 450, 90} {
		start := us(1000 * i)
		rec.Add(obs.Span{
			Cat: obs.CatServe, Workload: "sess-a", Point: i + 1,
			Start: start, Dur: us(dur),
			Phases: []obs.Phase{
				{Name: obs.PhaseDecode, Start: start, Dur: us(dur / 10)},
				{Name: obs.PhaseQueueWait, Start: start + us(dur/10), Dur: us(dur / 10)},
				{Name: obs.PhaseDecide, Start: start + us(2*dur/10), Dur: us(7 * dur / 10)},
				{Name: obs.PhaseWrite, Start: start + us(9*dur/10), Dur: us(dur / 10)},
			},
		})
	}
	path := filepath.Join(t.TempDir(), "serve.trace.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.WriteChromeTrace(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var out bytes.Buffer
	if code := run([]string{"spans", path}, &out); code != harness.ExitOK {
		t.Fatalf("inspect spans on serve file exited %d:\n%s", code, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"3 sampled request spans", "1 session(s)",
		"stage breakdown", "decide", "write",
		"slowest 3 sampled requests", "sess-a",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("serve-span output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "warmup") || strings.Contains(got, "worker lanes") {
		t.Errorf("serve-span view leaked simulation phases:\n%s", got)
	}
	// Sorted by duration: the 450µs request (seq 2) leads the table.
	tbl := got[strings.Index(got, "slowest"):]
	first := strings.Index(tbl, "450µs")
	second := strings.Index(tbl, "120µs")
	if first < 0 || second < 0 || first > second {
		t.Errorf("slowest-requests table not sorted by duration:\n%s", got)
	}
}
