package main

import (
	"bufio"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"semloc/internal/harness"
)

// TestInterruptCancelsRun builds the experiments binary, starts a run long
// enough to interrupt, sends SIGINT once output starts flowing, and checks
// the documented "cancelled" exit code.
func TestInterruptCancelsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary; skipped in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "experiments")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building experiments: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-run", "fig12", "-scale", "2")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stdout = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting experiments: %v", err)
	}

	// Wait for the "starting" progress log so we interrupt mid-run (during
	// the pre-warm simulation batch — tables only reach stdout after it),
	// not during startup, then keep draining so the child never blocks on a
	// full pipe.
	br := bufio.NewReader(stderr)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatalf("reading first progress line: %v", err)
	}
	go io.Copy(io.Discard, br)

	time.Sleep(300 * time.Millisecond)
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatalf("sending SIGINT: %v", err)
	}

	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatal("experiments did not exit within 30s of SIGINT")
	}
	if code := cmd.ProcessState.ExitCode(); code != harness.ExitCancelled {
		t.Fatalf("exit code = %d after SIGINT, want %d", code, harness.ExitCancelled)
	}
}
