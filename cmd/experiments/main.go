// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments                 # run everything (Table 2/3, Figures 1-14)
//	experiments -run fig12      # one experiment
//	experiments -run fig12,fig14 -scale 0.5
//	experiments -list           # list experiment ids
//	experiments -run fig12 -obs-dir results/obs -obs-interval 4096 -obs-rate 64
//	experiments -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Tables and figures go to stdout; progress and diagnostics go to stderr
// as structured logs (-q silences them). -obs-dir persists one JSON
// artifact per (workload, prefetcher) run — result, final metrics,
// learned-state summary, telemetry series — plus a decision trace when
// -obs-rate is set; render them with cmd/inspect. -listen serves live
// metrics (Prometheus /metrics, expvar, pprof) for the duration of the
// run; -spans records a Perfetto-loadable span trace of every cell.
//
// SIGINT/SIGTERM cancel in-flight simulations; results already printed
// stand. Exit codes: 0 all experiments completed, 1 at least one
// experiment failed, 2 usage error, 3 cancelled (see DESIGN.md,
// "Failure model").
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"semloc/internal/exp"
	"semloc/internal/harness"
	"semloc/internal/obs"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		runIDs     = flag.String("run", "", "comma-separated experiment ids (default: all)")
		scale      = flag.Float64("scale", 1, "workload scale factor")
		seed       = flag.Uint64("seed", 1, "workload seed")
		list       = flag.Bool("list", false, "list experiment ids")
		par        = flag.Int("parallel", 0, "max concurrent simulations (default GOMAXPROCS)")
		stall      = flag.Duration("stall", 0, "abort a run making no forward progress for this long (0 disables the watchdog)")
		quiet      = flag.Bool("q", false, "suppress progress logging (errors still print)")
		obsDir     = flag.String("obs-dir", "", "persist per-run telemetry artifacts into this directory")
		obsIvl     = flag.Uint64("obs-interval", 0, "sample time-series metrics every N demand accesses (0 disables; requires -obs-dir)")
		obsRate    = flag.Uint64("obs-rate", 0, "trace one in N prefetch decisions to a JSONL file (0 disables; requires -obs-dir)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		listen     = flag.String("listen", "", "serve /metrics, /debug/vars and pprof on this address while experiments run (empty host binds loopback)")
		spansPath  = flag.String("spans", "", "write a Chrome trace-event span file (Perfetto-loadable) here on exit")
	)
	flag.Parse()
	logger := obs.NewLogger(os.Stderr, "experiments", *quiet, false)

	if *list {
		for _, e := range exp.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return harness.ExitOK
	}
	if (*obsIvl > 0 || *obsRate > 0) && *obsDir == "" {
		logger.Error("-obs-interval/-obs-rate need -obs-dir to land anywhere")
		return harness.ExitUsage
	}

	stopProf, err := obs.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		logger.Error("starting profiles", "err", err)
		return harness.ExitRunFailed
	}
	defer func() {
		if err := stopProf(); err != nil {
			logger.Error("writing profiles", "err", err)
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	live, err := obs.StartLive(ctx, logger, *listen, *spansPath, 0)
	if err != nil {
		logger.Error("observability setup failed", "err", err)
		return harness.ExitUsage
	}
	defer live.Close()

	opts := exp.DefaultOptions()
	opts.Scale = *scale
	opts.Seed = *seed
	opts.Parallelism = *par
	opts.Harness = harness.RunConfig{StallTimeout: *stall}
	opts.OutDir = *obsDir
	opts.Metrics = live.Reg
	opts.Spans = live.Spans
	if *obsDir != "" {
		ivl := *obsIvl
		if ivl == 0 && *obsRate == 0 {
			// -obs-dir alone still means "observe": default the interval so
			// artifacts carry a learning curve.
			ivl = obs.DefaultInterval
		}
		opts.Telemetry = obs.Config{Interval: ivl, DecisionRate: *obsRate}
	}
	runner := exp.NewRunnerContext(ctx, opts)
	live.Ready()

	var selected []exp.Experiment
	if *runIDs == "" {
		selected = exp.Experiments()
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			e, err := exp.ByID(strings.TrimSpace(id))
			if err != nil {
				logger.Error("unknown experiment", "err", err)
				return harness.ExitUsage
			}
			selected = append(selected, e)
		}
	}
	logger.Info("starting", "experiments", len(selected), "scale", *scale, "seed", *seed,
		"obs_dir", *obsDir)

	// Pre-warm: fan the union of the selected experiments' simulation
	// matrices across the worker pool in one deduplicated batch. The
	// rendering loop below then reads memoized results in output order, so
	// cross-workload parallelism no longer depends on any one figure's
	// internal concurrency. Individual job failures are left for the owning
	// experiment to report in context; only batch-level corruption (a
	// mutated shared trace) aborts here.
	if warm := exp.PrewarmJobs(selected); len(warm) > 0 && ctx.Err() == nil {
		start := time.Now()
		if _, err := runner.RunJobs(warm); err != nil {
			logger.Error("pre-warm batch integrity check failed", "err", err)
			return harness.ExitRunFailed
		}
		logger.Info("pre-warm complete", "jobs", len(warm),
			"duration", time.Since(start).Round(time.Millisecond))
	}

	completed, failed := 0, 0
	for i, e := range selected {
		if ctx.Err() != nil {
			break
		}
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("### %s — %s (scale %g)\n\n", e.ID, e.Title, *scale)
		start := time.Now()
		if err := e.Run(runner, os.Stdout); err != nil {
			if harness.IsCancelled(err) || ctx.Err() != nil {
				break
			}
			// One failing experiment (bad pair, watchdog abort, recovered
			// panic) doesn't kill the sweep: report it and move on.
			logger.Error("experiment failed", "id", e.ID, "err", err)
			failed++
			continue
		}
		completed++
		logger.Info("experiment completed", "id", e.ID,
			"duration", time.Since(start).Round(time.Millisecond))
	}

	if ctx.Err() != nil {
		logger.Error("cancelled; partial results above",
			"completed", completed, "selected", len(selected))
		return harness.ExitCancelled
	}
	if failed > 0 {
		logger.Error("experiments failed", "failed", failed, "selected", len(selected))
		return harness.ExitRunFailed
	}
	logger.Info("done", "completed", completed)
	return harness.ExitOK
}
