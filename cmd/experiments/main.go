// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments                 # run everything (Table 2/3, Figures 1-14)
//	experiments -run fig12      # one experiment
//	experiments -run fig12,fig14 -scale 0.5
//	experiments -list           # list experiment ids
//
// SIGINT/SIGTERM cancel in-flight simulations; results already printed
// stand. Exit codes: 0 all experiments completed, 1 at least one
// experiment failed, 2 usage error, 3 cancelled (see DESIGN.md,
// "Failure model").
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"semloc/internal/exp"
	"semloc/internal/harness"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		runIDs = flag.String("run", "", "comma-separated experiment ids (default: all)")
		scale  = flag.Float64("scale", 1, "workload scale factor")
		seed   = flag.Uint64("seed", 1, "workload seed")
		list   = flag.Bool("list", false, "list experiment ids")
		par    = flag.Int("parallel", 0, "max concurrent simulations (default GOMAXPROCS)")
		stall  = flag.Duration("stall", 0, "abort a run making no forward progress for this long (0 disables the watchdog)")
	)
	flag.Parse()

	if *list {
		for _, e := range exp.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return harness.ExitOK
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := exp.DefaultOptions()
	opts.Scale = *scale
	opts.Seed = *seed
	opts.Parallelism = *par
	opts.Harness = harness.RunConfig{StallTimeout: *stall}
	runner := exp.NewRunnerContext(ctx, opts)

	var selected []exp.Experiment
	if *runIDs == "" {
		selected = exp.Experiments()
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			e, err := exp.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				return harness.ExitUsage
			}
			selected = append(selected, e)
		}
	}

	completed, failed := 0, 0
	for i, e := range selected {
		if ctx.Err() != nil {
			break
		}
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("### %s — %s (scale %g)\n\n", e.ID, e.Title, *scale)
		start := time.Now()
		if err := e.Run(runner, os.Stdout); err != nil {
			if harness.IsCancelled(err) || ctx.Err() != nil {
				break
			}
			// One failing experiment (bad pair, watchdog abort, recovered
			// panic) doesn't kill the sweep: report it and move on.
			fmt.Fprintf(os.Stderr, "experiments: %s failed: %v\n", e.ID, err)
			failed++
			continue
		}
		completed++
		fmt.Printf("[%s completed in %v]\n", e.ID, time.Since(start).Round(time.Millisecond))
	}

	if ctx.Err() != nil {
		fmt.Fprintf(os.Stderr, "experiments: cancelled after %d of %d experiments; partial results above\n",
			completed, len(selected))
		return harness.ExitCancelled
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "experiments: %d of %d experiments failed\n", failed, len(selected))
		return harness.ExitRunFailed
	}
	return harness.ExitOK
}
