// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments                 # run everything (Table 2/3, Figures 1-14)
//	experiments -run fig12      # one experiment
//	experiments -run fig12,fig14 -scale 0.5
//	experiments -list           # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"semloc/internal/exp"
)

func main() {
	var (
		run   = flag.String("run", "", "comma-separated experiment ids (default: all)")
		scale = flag.Float64("scale", 1, "workload scale factor")
		seed  = flag.Uint64("seed", 1, "workload seed")
		list  = flag.Bool("list", false, "list experiment ids")
		par   = flag.Int("parallel", 0, "max concurrent simulations (default GOMAXPROCS)")
	)
	flag.Parse()

	if *list {
		for _, e := range exp.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	opts := exp.DefaultOptions()
	opts.Scale = *scale
	opts.Seed = *seed
	opts.Parallelism = *par
	runner := exp.NewRunner(opts)

	var selected []exp.Experiment
	if *run == "" {
		selected = exp.Experiments()
	} else {
		for _, id := range strings.Split(*run, ",") {
			e, err := exp.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	for i, e := range selected {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("### %s — %s (scale %g)\n\n", e.ID, e.Title, *scale)
		start := time.Now()
		if err := e.Run(runner, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %v]\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
