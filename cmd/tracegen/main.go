// Command tracegen generates a workload trace and writes it in the binary
// trace format, so experiments can replay identical traces and traces can
// be shared between machines.
//
// Usage:
//
//	tracegen -workload list -o list.trace [-scale 1] [-seed 1] [-gzip]
package main

import (
	"flag"
	"fmt"
	"os"

	"semloc/internal/trace"
	"semloc/internal/workloads"
)

func main() {
	var (
		workload = flag.String("workload", "", "workload name (see prefetchsim -list)")
		out      = flag.String("o", "", "output file (default <workload>.trace)")
		scale    = flag.Float64("scale", 1, "workload scale factor")
		seed     = flag.Uint64("seed", 1, "workload seed")
		gz       = flag.Bool("gzip", false, "gzip-compress the output")
	)
	flag.Parse()
	if *workload == "" {
		fmt.Fprintln(os.Stderr, "tracegen: -workload required")
		os.Exit(2)
	}
	w, err := workloads.ByName(*workload)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(2)
	}
	path := *out
	if path == "" {
		path = *workload + ".trace"
		if *gz {
			path += ".gz"
		}
	}
	tr := w.Generate(workloads.GenConfig{Scale: *scale, Seed: *seed})
	if err := tr.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen: generated invalid trace:", err)
		os.Exit(1)
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	write := trace.Write
	if *gz {
		write = trace.WriteGzip
	}
	if err := write(f, tr); err != nil {
		f.Close()
		fmt.Fprintln(os.Stderr, "tracegen: writing trace:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	st := tr.ComputeStats()
	info, _ := os.Stat(path)
	fmt.Printf("wrote %s: %d records (%d instructions, %d loads, %d stores), %d bytes\n",
		path, st.Records, st.Instructions, st.Loads, st.Stores, info.Size())
}
