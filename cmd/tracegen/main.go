// Command tracegen generates a workload trace and writes it in the binary
// trace format, so experiments can replay identical traces and traces can
// be shared between machines.
//
// Usage:
//
//	tracegen -workload list -o list.trace [-scale 1] [-seed 1] [-gzip]
//
// Exit codes: 0 ok, 1 generation or write failed, 2 usage error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"semloc/internal/trace"
	"semloc/internal/workloads"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		workload = fs.String("workload", "", "workload name (see prefetchsim -list)")
		out      = fs.String("o", "", "output file (default <workload>.trace)")
		scale    = fs.Float64("scale", 1, "workload scale factor")
		seed     = fs.Uint64("seed", 1, "workload seed")
		gz       = fs.Bool("gzip", false, "gzip-compress the output")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *workload == "" {
		fmt.Fprintln(stderr, "tracegen: -workload required")
		return 2
	}
	w, err := workloads.ByName(*workload)
	if err != nil {
		fmt.Fprintln(stderr, "tracegen:", err)
		return 2
	}
	path := *out
	if path == "" {
		path = *workload + ".trace"
		if *gz {
			path += ".gz"
		}
	}
	tr := w.Generate(workloads.GenConfig{Scale: *scale, Seed: *seed})
	if err := tr.Validate(); err != nil {
		fmt.Fprintln(stderr, "tracegen: generated invalid trace:", err)
		return 1
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(stderr, "tracegen:", err)
		return 1
	}
	write := trace.Write
	if *gz {
		write = trace.WriteGzip
	}
	if err := write(f, tr); err != nil {
		f.Close()
		fmt.Fprintln(stderr, "tracegen: writing trace:", err)
		return 1
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(stderr, "tracegen:", err)
		return 1
	}
	st := tr.ComputeStats()
	info, _ := os.Stat(path)
	fmt.Fprintf(stdout, "wrote %s: %d records (%d instructions, %d loads, %d stores), %d bytes\n",
		path, st.Records, st.Instructions, st.Loads, st.Stores, info.Size())
	return 0
}
