package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"semloc/internal/trace"
)

// TestTracegenRoundTrip generates a tiny trace, re-reads the file, and
// checks it survives the binary format intact — for both the plain and the
// gzip encodings.
func TestTracegenRoundTrip(t *testing.T) {
	for _, gz := range []bool{false, true} {
		dir := t.TempDir()
		path := filepath.Join(dir, "list.trace")
		args := []string{"-workload", "list", "-scale", "0.02", "-o", path}
		if gz {
			args = append(args, "-gzip")
		}
		var out, errBuf bytes.Buffer
		if code := run(args, &out, &errBuf); code != 0 {
			t.Fatalf("tracegen (gzip=%v) exited %d: %s", gz, code, errBuf.String())
		}
		if !strings.Contains(out.String(), "wrote "+path) {
			t.Errorf("summary line missing path: %q", out.String())
		}
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		// trace.Read auto-detects the gzip container.
		tr, err := trace.Read(f)
		if err != nil {
			t.Fatalf("re-reading written trace (gzip=%v): %v", gz, err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("round-tripped trace invalid: %v", err)
		}
		if len(tr.Records) == 0 || tr.Name != "list" {
			t.Fatalf("round-tripped trace lost content: name=%q records=%d", tr.Name, len(tr.Records))
		}
	}
}

func TestTracegenUsageErrors(t *testing.T) {
	cases := [][]string{
		{},                       // missing -workload
		{"-workload", "no-such"}, // unknown workload
		{"-no-such-flag"},        // bad flag
	}
	for _, args := range cases {
		var out, errBuf bytes.Buffer
		if code := run(args, &out, &errBuf); code != 2 {
			t.Errorf("tracegen %v exited %d, want 2", args, code)
		}
	}
}

func TestTracegenUnwritablePath(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-workload", "list", "-scale", "0.02",
		"-o", filepath.Join(t.TempDir(), "no-such-dir", "x.trace")}, &out, &errBuf)
	if code != 1 {
		t.Errorf("unwritable output exited %d, want 1", code)
	}
}
