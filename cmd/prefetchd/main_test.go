package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"semloc/internal/core"
	"semloc/internal/serve"
	"semloc/internal/serve/client"
)

func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "prefetchd")
	// Race-instrumented so the daemon process itself is under the
	// detector during the SIGTERM drain, not just this test harness.
	cmd := exec.Command("go", "build", "-race", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building prefetchd: %v\n%s", err, out)
	}
	return bin
}

// startDaemon launches the binary and waits for its -addr-file.
func startDaemon(t *testing.T, bin string, extra ...string) (*exec.Cmd, string) {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	args := append([]string{"-listen", "127.0.0.1:0", "-addr-file", addrFile, "-q"}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			return cmd, strings.TrimSpace(string(b))
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatal("daemon never wrote its addr file")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func sigtermAndWait(t *testing.T, cmd *exec.Cmd) {
	t.Helper()
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		cmd.Process.Kill()
		t.Fatal("daemon did not drain within 15s of SIGTERM")
	}
}

// TestSigtermDrainWarmStart is the process-level durability contract:
// SIGTERM mid-stream exits 0 after writing the final snapshot, and the
// restarted process resumes the session bit-identically to a never-killed
// in-process learner.
func TestSigtermDrainWarmStart(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary")
	}
	bin := buildDaemon(t)
	snap := filepath.Join(t.TempDir(), "prefetchd.snap")

	ref, err := serve.NewLearner(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	frame := func(i uint64) *serve.Frame {
		return &serve.Frame{Type: serve.FrameAccess, Seq: i, PC: 0x400000,
			Addr: 0x200000 + (i%256)*64}
	}
	const split, total = 500, 1000

	cmd1, addr1 := startDaemon(t, bin, "-snapshot", snap)
	c1, err := client.Dial(client.Config{Addr: client.FixedAddr(addr1), Session: "smoke"})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= split; i++ {
		want := ref.Decide(frame(i))
		got, err := c1.Decide(frame(i))
		if err != nil {
			t.Fatalf("seq %d: %v", i, err)
		}
		if !serve.SameDecision(got, want) {
			t.Fatalf("seq %d: daemon diverged from in-process reference", i)
		}
	}
	c1.Close()
	sigtermAndWait(t, cmd1)
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("no snapshot after drain: %v", err)
	}

	cmd2, addr2 := startDaemon(t, bin, "-snapshot", snap)
	defer func() { sigtermAndWait(t, cmd2) }()
	c2, err := client.Dial(client.Config{Addr: client.FixedAddr(addr2), Session: "smoke"})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if !c2.Resumed() || c2.ServerSeq() != split {
		t.Fatalf("warm start: resumed=%v serverSeq=%d, want true/%d", c2.Resumed(), c2.ServerSeq(), split)
	}
	for i := uint64(split + 1); i <= total; i++ {
		want := ref.Decide(frame(i))
		got, err := c2.Decide(frame(i))
		if err != nil {
			t.Fatalf("seq %d: %v", i, err)
		}
		if !serve.SameDecision(got, want) {
			t.Fatalf("post-restart seq %d diverged from uninterrupted reference", i)
		}
	}
}

func TestUsageErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary")
	}
	bin := buildDaemon(t)
	for _, args := range [][]string{
		{"-bogus-flag"},
		{"stray-positional"},
	} {
		err := exec.Command(bin, args...).Run()
		ee, ok := err.(*exec.ExitError)
		if !ok || ee.ExitCode() != 2 {
			t.Fatalf("args %v: want exit 2, got %v", args, err)
		}
	}
}
