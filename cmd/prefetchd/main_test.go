package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"semloc/internal/core"
	"semloc/internal/obs"
	"semloc/internal/serve"
	"semloc/internal/serve/client"
)

func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "prefetchd")
	// Race-instrumented so the daemon process itself is under the
	// detector during the SIGTERM drain, not just this test harness.
	cmd := exec.Command("go", "build", "-race", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building prefetchd: %v\n%s", err, out)
	}
	return bin
}

// startDaemon launches the binary and waits for its -addr-file.
func startDaemon(t *testing.T, bin string, extra ...string) (*exec.Cmd, string) {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	args := append([]string{"-listen", "127.0.0.1:0", "-addr-file", addrFile, "-q"}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			return cmd, strings.TrimSpace(string(b))
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatal("daemon never wrote its addr file")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func sigtermAndWait(t *testing.T, cmd *exec.Cmd) {
	t.Helper()
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		cmd.Process.Kill()
		t.Fatal("daemon did not drain within 15s of SIGTERM")
	}
}

// TestSigtermDrainWarmStart is the process-level durability contract:
// SIGTERM mid-stream exits 0 after writing the final snapshot, and the
// restarted process resumes the session bit-identically to a never-killed
// in-process learner.
func TestSigtermDrainWarmStart(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary")
	}
	bin := buildDaemon(t)
	snap := filepath.Join(t.TempDir(), "prefetchd.snap")

	ref, err := serve.NewLearner(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	frame := func(i uint64) *serve.Frame {
		return &serve.Frame{Type: serve.FrameAccess, Seq: i, PC: 0x400000,
			Addr: 0x200000 + (i%256)*64}
	}
	const split, total = 500, 1000

	cmd1, addr1 := startDaemon(t, bin, "-snapshot", snap)
	c1, err := client.Dial(client.Config{Addr: client.FixedAddr(addr1), Session: "smoke"})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= split; i++ {
		want := ref.Decide(frame(i))
		got, err := c1.Decide(frame(i))
		if err != nil {
			t.Fatalf("seq %d: %v", i, err)
		}
		if !serve.SameDecision(got, want) {
			t.Fatalf("seq %d: daemon diverged from in-process reference", i)
		}
	}
	c1.Close()
	sigtermAndWait(t, cmd1)
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("no snapshot after drain: %v", err)
	}

	cmd2, addr2 := startDaemon(t, bin, "-snapshot", snap)
	defer func() { sigtermAndWait(t, cmd2) }()
	c2, err := client.Dial(client.Config{Addr: client.FixedAddr(addr2), Session: "smoke"})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if !c2.Resumed() || c2.ServerSeq() != split {
		t.Fatalf("warm start: resumed=%v serverSeq=%d, want true/%d", c2.Resumed(), c2.ServerSeq(), split)
	}
	for i := uint64(split + 1); i <= total; i++ {
		want := ref.Decide(frame(i))
		got, err := c2.Decide(frame(i))
		if err != nil {
			t.Fatalf("seq %d: %v", i, err)
		}
		if !serve.SameDecision(got, want) {
			t.Fatalf("post-restart seq %d diverged from uninterrupted reference", i)
		}
	}
}

// TestObservabilityAndDrainReadiness exercises the daemon's observability
// surface end to end at the process level: the serve_*_latency histograms
// on /metrics (whose counts must equal serve_decisions_total), the
// /debug/serve per-session stats endpoint, the sampled-span file written
// on drain — and the readiness contract: /readyz serves 200 while up,
// then 503 during the -drain-grace window after SIGTERM, before the
// process exits 0.
func TestObservabilityAndDrainReadiness(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary")
	}
	bin := buildDaemon(t)
	dir := t.TempDir()
	obsAddrFile := filepath.Join(dir, "obs-addr")
	spansFile := filepath.Join(dir, "spans.json")

	cmd, addr := startDaemon(t, bin,
		"-obs-listen", "127.0.0.1:0", "-obs-addr-file", obsAddrFile,
		"-spans", spansFile, "-trace-sample", "1",
		"-drain-grace", "2s")

	var obsAddr string
	deadline := time.Now().Add(10 * time.Second)
	for obsAddr == "" {
		if b, err := os.ReadFile(obsAddrFile); err == nil && len(b) > 0 {
			obsAddr = strings.TrimSpace(string(b))
		} else if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatal("daemon never wrote its obs addr file")
		} else {
			time.Sleep(20 * time.Millisecond)
		}
	}
	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + obsAddr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: reading body: %v", path, err)
		}
		return resp.StatusCode, string(b)
	}

	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz while serving: %d, want 200", code)
	}

	const n = 64
	c, err := client.Dial(client.Config{Addr: client.FixedAddr(addr), Session: "obs"})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= n; i++ {
		if _, err := c.Decide(&serve.Frame{Type: serve.FrameAccess, Seq: i,
			PC: 0x400000, Addr: 0x300000 + (i%128)*64}); err != nil {
			t.Fatalf("seq %d: %v", i, err)
		}
	}

	// /metrics: every stage histogram's count equals serve_decisions_total.
	// The worker observes after writing the reply, so the final frame's
	// observation can trail the client's receive by a moment — poll.
	names := []string{
		serve.MetricDecodeLatency, serve.MetricQueueWaitLatency,
		serve.MetricDecideLatency, serve.MetricWriteLatency, serve.MetricFrameLatency,
	}
	var metrics string
	deadline = time.Now().Add(5 * time.Second)
	for {
		_, metrics = get("/metrics")
		settled := strings.Contains(metrics, fmt.Sprintf("serve_decisions_total %d", n))
		for _, name := range names {
			settled = settled && strings.Contains(metrics, fmt.Sprintf("%s_count %d", name, n))
		}
		if settled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/metrics never settled at %d decisions with matching histogram counts:\n%s", n, metrics)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// /debug/serve: our session's stats as JSON.
	_, body := get("/debug/serve")
	var stats []serve.SessionStats
	if err := json.Unmarshal([]byte(body), &stats); err != nil {
		t.Fatalf("/debug/serve not JSON: %v\n%s", err, body)
	}
	if len(stats) != 1 || stats[0].ID != "obs" || stats[0].Decisions != n || stats[0].LastSeq != n {
		t.Fatalf("/debug/serve stats: %+v", stats)
	}
	c.Close()

	// SIGTERM: readiness must flip to 503 during the drain-grace window,
	// while the process is still alive.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	sawDraining := false
	deadline = time.Now().Add(5 * time.Second)
	for !sawDraining && time.Now().Before(deadline) {
		resp, err := http.Get("http://" + obsAddr + "/readyz")
		if err != nil {
			break // obs endpoint already down: drain finished too fast
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			sawDraining = true
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !sawDraining {
		t.Fatal("never observed /readyz 503 during the drain-grace window")
	}

	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		cmd.Process.Kill()
		t.Fatal("daemon did not drain within 15s of SIGTERM")
	}

	// The span file written on drain holds serve-category request spans
	// with the four-stage breakdown — the format `inspect spans` renders.
	f, err := os.Open(spansFile)
	if err != nil {
		t.Fatalf("no span file after drain: %v", err)
	}
	defer f.Close()
	spans, err := obs.ReadChromeTrace(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != n { // -trace-sample 1: every decision sampled
		t.Fatalf("%d spans in file, want %d", len(spans), n)
	}
	for _, sp := range spans {
		if sp.Cat != obs.CatServe || sp.Workload != "obs" || len(sp.Phases) != 4 {
			t.Fatalf("bad serve span in file: %+v", sp)
		}
	}
}

func TestUsageErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary")
	}
	bin := buildDaemon(t)
	for _, args := range [][]string{
		{"-bogus-flag"},
		{"stray-positional"},
	} {
		err := exec.Command(bin, args...).Run()
		ee, ok := err.(*exec.ExitError)
		if !ok || ee.ExitCode() != 2 {
			t.Fatalf("args %v: want exit 2, got %v", args, err)
		}
	}
}
