// Command prefetchd is the resilient prefetch-serving daemon: it accepts
// streaming access records from many concurrent client sessions over TCP
// (newline-delimited JSON frames, see internal/serve) and replies with
// prefetch decisions from per-session context learners.
//
// Robustness surface:
//
//   - Session lifecycle: sessions are created on first hello, re-attached
//     on reconnect, and reaped after -session-ttl of detached idleness.
//   - Overload: per-session inboxes are bounded (-inbox); when one fills,
//     accesses are answered immediately by a cheap next-line fallback
//     (decision carries degraded:true). A global in-flight cap
//     (-max-inflight) answers excess load with explicit busy frames.
//   - Durability: with -snapshot, learner state is checkpointed
//     periodically (-snapshot-interval), on SIGINT/SIGTERM drain, and
//     restored on boot (warm start) — a restarted daemon continues
//     bit-identically from its last snapshot.
//   - Containment: a panic in one session's learner poisons only that
//     session; a panic in one connection handler severs only that
//     connection.
//   - Throughput: clients may negotiate batching at hello (up to
//     -max-batch accesses per frame; one queue hop, one replay span and
//     one syscall per batch), and worker replies are coalesced per
//     connection (-write-coalesce/-write-coalesce-delay) so concurrent
//     sessions share response syscalls. Old clients never ask and keep
//     speaking frame-per-decision unchanged.
//
// Observability: -obs-listen serves /metrics (Prometheus), /healthz,
// /readyz, /debug/serve (per-session serving stats as JSON) and pprof.
// The serving path is always instrumented: per-frame stage latency
// histograms (serve_decode/queue_wait/decide/write/frame_latency) cost a
// few clock reads per decision. -spans samples one request span per
// -trace-sample decisions into a Chrome-trace file written on drain
// (render with `inspect spans`); -slow-threshold logs any request slower
// than the threshold with its stage breakdown. Readiness flips up only
// after the snapshot restore and the serving socket are both up, so a
// load balancer never routes to a daemon still warming state — and flips
// down at the first drain signal, -drain-grace before the listener
// closes, so probes see 503 while in-flight streams finish.
//
// Exit codes: 0 clean drain (including signal-initiated), 1 runtime or
// shutdown failure (e.g. the final snapshot could not be written),
// 2 usage error.
//
// Usage:
//
//	prefetchd -listen 127.0.0.1:7077 -snapshot /var/tmp/prefetchd.snap
//	prefetchd -listen 127.0.0.1:0 -addr-file /tmp/prefetchd.addr -q
//	prefetchd -obs-listen :0 -spans /tmp/serve-spans.json -slow-threshold 5ms
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"semloc/internal/harness"
	"semloc/internal/obs"
	"semloc/internal/serve"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("prefetchd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		listen       = fs.String("listen", "127.0.0.1:7077", "serving socket address (use :0 for an ephemeral port)")
		obsListen    = fs.String("obs-listen", "", "serve /metrics, /healthz, /readyz and pprof on this address")
		snapshot     = fs.String("snapshot", "", "snapshot file for restore-on-boot and periodic/shutdown checkpoints")
		snapInterval = fs.Duration("snapshot-interval", 30*time.Second, "period between snapshots (with -snapshot)")
		sessionTTL   = fs.Duration("session-ttl", 5*time.Minute, "expire detached sessions idle this long")
		inbox        = fs.Int("inbox", 64, "per-session inbox depth before accesses shed to the degraded fallback")
		maxInflight  = fs.Int("max-inflight", 1024, "global cap on accepted-but-unanswered accesses before busy replies")
		maxBatch     = fs.Int("max-batch", serve.MaxBatch, "largest batch granted to clients at hello (0 disables batching)")
		wcoalesce    = fs.Int("write-coalesce", 4096, "buffer worker replies per connection and flush at this many bytes or on an idle inbox (0 disables)")
		wcoalesceDel = fs.Duration("write-coalesce-delay", 200*time.Microsecond, "upper bound on how long a buffered reply waits for company")
		addrFile     = fs.String("addr-file", "", "write the bound serving address to this file once listening")
		obsAddrFile  = fs.String("obs-addr-file", "", "write the bound observability address to this file (with -obs-listen)")
		spansOut     = fs.String("spans", "", "write sampled per-request spans to this Chrome-trace file on drain")
		traceSample  = fs.Int("trace-sample", 256, "record one request span per N decisions (with -spans)")
		slowThresh   = fs.Duration("slow-threshold", 0, "log requests slower than this end-to-end, with stage breakdown (0 disables)")
		drainGrace   = fs.Duration("drain-grace", 0, "after a drain signal, hold /readyz at 503 this long before closing the listener")
		quiet        = fs.Bool("q", false, "suppress progress logging (errors still print)")
	)
	if err := fs.Parse(args); err != nil {
		return harness.ExitUsage
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "prefetchd: unexpected arguments: %v\n", fs.Args())
		return harness.ExitUsage
	}
	logger := obs.NewLogger(stderr, "prefetchd", *quiet, false)

	reg := obs.NewRegistry()
	// The daemon always carries the stage-latency histograms (the cost is
	// a few clock reads per decision); spans only when -spans names a file.
	var spans *obs.SpanRecorder
	if *spansOut != "" {
		spans = obs.NewSpanRecorder()
	}
	trace := &serve.TraceConfig{
		Spans:         spans,
		SampleEvery:   *traceSample,
		SlowThreshold: *slowThresh,
	}
	// The flags use 0 for "off"; the config uses negative (0 there means
	// "default").
	cfgMaxBatch, cfgCoalesce := *maxBatch, *wcoalesce
	if cfgMaxBatch == 0 {
		cfgMaxBatch = -1
	}
	if cfgCoalesce == 0 {
		cfgCoalesce = -1
	}
	srv, err := serve.NewServer(serve.Config{
		Listen:             *listen,
		SessionTTL:         *sessionTTL,
		InboxDepth:         *inbox,
		MaxInflight:        *maxInflight,
		MaxBatch:           cfgMaxBatch,
		WriteCoalesce:      cfgCoalesce,
		WriteCoalesceDelay: *wcoalesceDel,
		SnapshotPath:       *snapshot,
		SnapshotInterval:   *snapInterval,
		Shards:             0, // default
		Reg:                reg,
		Trace:              trace,
		Logf: func(format string, a ...any) {
			logger.Info(fmt.Sprintf(format, a...))
		},
	})
	if err != nil {
		// A corrupt or unreadable snapshot is a runtime failure, not a
		// usage error: the operator must decide whether to delete it.
		logger.Error("boot failed", "err", err)
		return harness.ExitRunFailed
	}

	var obsSrv *obs.Server
	if *obsListen != "" {
		obsSrv, err = obs.Serve(*obsListen, reg)
		if err != nil {
			logger.Error("observability endpoint failed", "err", err)
			return harness.ExitUsage
		}
		defer obsSrv.Close()
		// Per-session serving stats, one JSON array ordered by session id.
		obsSrv.Handle("/debug/serve", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(srv.SessionStatsAll())
		}))
		if *obsAddrFile != "" {
			if err := os.WriteFile(*obsAddrFile, []byte(obsSrv.Addr()+"\n"), 0o644); err != nil {
				logger.Error("writing -obs-addr-file failed", "err", err)
				return harness.ExitUsage
			}
		}
		logger.Info("observability endpoint up", "addr", obsSrv.Addr(),
			"metrics", fmt.Sprintf("http://%s/metrics", obsSrv.Addr()))
	}

	if err := srv.Start(); err != nil {
		logger.Error("listen failed", "err", err)
		return harness.ExitUsage
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(srv.Addr().String()+"\n"), 0o644); err != nil {
			logger.Error("writing -addr-file failed", "err", err)
			srv.Close()
			return harness.ExitUsage
		}
	}
	// Readiness only after restore (inside NewServer) and bind both
	// succeeded: a probe hitting /readyz never routes to cold state.
	if obsSrv != nil {
		obsSrv.SetReady(true)
	}
	logger.Info("serving", "addr", srv.Addr().String(),
		"restored_sessions", srv.RestoredSessions(), "snapshot", *snapshot)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop() // a second signal kills immediately instead of re-queueing

	logger.Info("signal received; draining")
	// Readiness drops first: a load balancer probing /readyz sees 503 and
	// stops routing while the daemon is still serving in-flight streams.
	// -drain-grace holds that window open (one or two probe periods in a
	// real deployment) before the listener actually closes.
	if obsSrv != nil {
		obsSrv.SetReady(false)
	}
	// stop() already ran, so a second signal kills the process outright
	// rather than waiting out the grace sleep.
	if *drainGrace > 0 {
		time.Sleep(*drainGrace)
	}
	if err := srv.Close(); err != nil {
		logger.Error("drain failed", "err", err)
		return harness.ExitRunFailed
	}
	if spans != nil {
		if err := writeSpans(*spansOut, spans); err != nil {
			logger.Error("writing -spans failed", "err", err)
			return harness.ExitRunFailed
		}
		logger.Info("wrote request spans", "file", *spansOut, "spans", len(spans.Spans()))
	}
	logger.Info("drained cleanly", "snapshot", *snapshot)
	return harness.ExitOK
}

// writeSpans renders the sampled request spans as Chrome trace-event JSON
// (the format `inspect spans` reads).
func writeSpans(path string, spans *obs.SpanRecorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := spans.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
