package main

import (
	"bytes"
	"fmt"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"semloc/internal/loadreport"
	"semloc/internal/obs"
	"semloc/internal/serve"
)

// startInstrumentedDaemon runs an in-process prefetchd-equivalent: a
// serve.Server with the stage-latency tracer on, plus an obs endpoint
// exporting its registry — what `prefetchd -obs-listen :0` serves.
func startInstrumentedDaemon(t *testing.T) (*serve.Server, *obs.Server) {
	t.Helper()
	reg := obs.NewRegistry()
	srv, err := serve.NewServer(serve.Config{
		Listen: "127.0.0.1:0",
		Reg:    reg,
		Trace:  &serve.TraceConfig{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	obsSrv, err := obs.Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { obsSrv.Close() })
	return srv, obsSrv
}

// TestLoadgenSmoke is the make-check gate: a short closed-loop run
// against an instrumented in-process daemon must produce a validating
// artifact whose client and server views agree, and leak nothing — once
// frame-per-decision (batch 1) and once down the batched pipeline.
func TestLoadgenSmoke(t *testing.T) {
	for _, batch := range []int{1, 16} {
		t.Run(fmt.Sprintf("batch=%d", batch), func(t *testing.T) {
			testLoadgenSmoke(t, batch)
		})
	}
}

func testLoadgenSmoke(t *testing.T, batch int) {
	srv, obsSrv := startInstrumentedDaemon(t)
	baseGoroutines := runtime.NumGoroutine()
	out := filepath.Join(t.TempDir(), "LOADGEN_smoke.json")

	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-addr", srv.Addr().String(),
		"-metrics", obsSrv.Addr(),
		"-sessions", "3",
		"-duration", "2s",
		"-batch", fmt.Sprint(batch),
		"-workload", "list", "-scale", "0.05",
		"-progress", "500ms",
		"-out", out,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("loadgen exited %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "loadgen: wrote") {
		t.Fatalf("no completion line on stdout: %q", stdout.String())
	}

	rep, err := loadreport.Load(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatal(err)
	}
	if rep.Sessions != 3 || rep.OpenLoop || rep.Workload != "list" || rep.Batch != batch {
		t.Fatalf("artifact config drifted: %+v", rep)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d request errors against a healthy local daemon", rep.Errors)
	}
	if rep.Latency.P50NS <= 0 || rep.Latency.P99NS < rep.Latency.P50NS {
		t.Fatalf("implausible latency: %+v", rep.Latency)
	}

	// The server scrape must be present, must satisfy the count-match
	// invariant (Validate checked it), and must agree with the client's
	// count of fresh decisions.
	if rep.Server == nil {
		t.Fatal("artifact missing the server scrape despite -metrics")
	}
	fresh := rep.Decisions - rep.Degraded - rep.Replayed
	if rep.Server.DecisionsTotal != fresh {
		t.Fatalf("server decided %d, clients observed %d fresh decisions",
			rep.Server.DecisionsTotal, fresh)
	}
	if len(rep.Server.LatencyCounts) != 5 {
		t.Fatalf("scrape holds %d latency histograms, want 5", len(rep.Server.LatencyCounts))
	}
	if batch > 1 {
		// Batched runs must scrape the batch-size histogram, and its sum
		// must re-add to the decision count (Validate enforced this; the
		// mean confirms batches actually formed).
		bs := rep.Server.BatchSize
		if bs == nil {
			t.Fatal("batched artifact missing the batch_size scrape")
		}
		if bs.Mean <= 1 {
			t.Fatalf("closed-loop batch 16 run averaged %.2f accesses per frame — batching never engaged", bs.Mean)
		}
	}

	// Progress lines made it to stderr.
	if !strings.Contains(stderr.String(), "progress") {
		t.Fatalf("no progress lines on stderr:\n%s", stderr.String())
	}

	// Leak check: every loadgen-side goroutine (session drivers, progress
	// ticker) is gone. The daemon keeps one detached worker per session
	// until the TTL reaper fires — that residue is by design, so the bound
	// allows it plus a little scheduler slack.
	allowed := baseGoroutines + rep.Sessions + 2
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > allowed {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d > %d (baseline %d + %d detached session workers + slack)",
				runtime.NumGoroutine(), allowed, baseGoroutines, rep.Sessions)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestLoadgenOpenLoopRate: a modest fixed-rate open-loop run must hit its
// schedule (achieved ≈ target on an idle local daemon) and mark the
// artifact open-loop.
func TestLoadgenOpenLoopRate(t *testing.T) {
	srv, _ := startInstrumentedDaemon(t)
	out := filepath.Join(t.TempDir(), "LOADGEN_rate.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-addr", srv.Addr().String(),
		"-sessions", "2",
		"-rate", "400",
		"-duration", "2s",
		"-workload", "array", "-scale", "0.05",
		"-progress", "0",
		"-q",
		"-out", out,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("loadgen exited %d\nstderr: %s", code, stderr.String())
	}
	rep, err := loadreport.Load(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatal(err)
	}
	if !rep.OpenLoop || rep.TargetRate != 400 {
		t.Fatalf("artifact not open-loop at 400/s: %+v", rep)
	}
	// An idle local daemon keeps the schedule comfortably; allow wide
	// tolerance for a loaded CI box.
	if rep.AchievedRate < 200 || rep.AchievedRate > 500 {
		t.Fatalf("achieved %.0f/s against a 400/s schedule", rep.AchievedRate)
	}
}

// TestLoadgenUsageErrors pins the usage exit code.
func TestLoadgenUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{},                                 // -addr missing
		{"-addr", "x", "stray"},            // positional
		{"-addr", "x", "-sessions", "0"},   // bad sessions
		{"-addr", "x", "-rate", "-1"},      // negative rate
		{"-addr", "x", "-duration", "-2s"}, // bad duration
		{"-addr", "x", "-batch", "0"},      // batch below 1
		{"-addr", "x", "-batch", "65"},     // batch above the protocol cap
		{"-bogus"},                         // unknown flag
	} {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Fatalf("args %v: want exit 2, got %d", args, code)
		}
	}
}
