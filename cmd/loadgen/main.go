// Command loadgen drives a running prefetchd daemon with N concurrent
// client sessions and measures what it can serve: decisions per second
// and the client-observed latency distribution, written as a
// LOADGEN_<n>.json artifact (render or compare with `inspect serve`).
//
// Two operating modes:
//
//   - Open loop (-rate R): sessions send on a fixed schedule totalling R
//     decisions/sec, and each request's latency is measured from its
//     *scheduled* send time — the coordinated-omission correction, so a
//     stalling daemon inflates the tail instead of silently slowing the
//     clock that feeds it.
//   - Closed loop (-rate 0, the default): every session sends the next
//     access the moment the previous decision arrives — the saturation
//     probe. Latency is per-request round trip.
//
// The access stream comes from a generated workload (-workload/-scale/
// -seed, same generators as prefetchsim) or a recorded trace file
// (-trace); each session replays it in a loop under its own
// monotonically increasing seq.
//
// -batch B (default 1) packs B accesses per exchange using the batched
// protocol negotiated at hello. Latency stays per *decision*: in closed
// loop every member is timed from the batch's send, in open loop every
// member keeps its own scheduled send time — the batch goes out when its
// last member comes due, and the wait is charged to the early members
// (coordinated omission again), not hidden.
//
// With -metrics HOST:PORT (the daemon's -obs-listen address), the
// artifact also embeds a server-side scrape: the serving counters and
// every serve_*_latency histogram count, which must equal
// serve_decisions_total — the count-match invariant Validate enforces.
//
// Live progress (running percentiles, achieved rate) goes to stderr
// every -progress interval; -q silences it.
//
// Exit codes follow the harness contract: 0 ok, 1 run or artifact
// failure, 2 usage error, 3 cancelled by signal.
//
// Usage:
//
//	loadgen -addr 127.0.0.1:7077 -sessions 8 -duration 30s
//	loadgen -addr 127.0.0.1:7077 -rate 50000 -workload mcf -metrics 127.0.0.1:9090
//	loadgen -addr 127.0.0.1:7077 -trace results/app.trace -out LOADGEN_2.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"log/slog"

	"semloc/internal/harness"
	"semloc/internal/loadreport"
	"semloc/internal/obs"
	"semloc/internal/serve"
	"semloc/internal/serve/client"
	"semloc/internal/trace"
	"semloc/internal/workloads"
)

// loadgenSeq is the default artifact sequence number; bump it (or pass
// -n) in the PR that records a new baseline.
const loadgenSeq = 1

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// genConfig is one load-generation run, resolved from flags.
type genConfig struct {
	addr     string
	sessions int
	batch    int     // accesses per exchange; 1 = frame-at-a-time
	rate     float64 // total decisions/sec target; 0 = closed loop
	duration time.Duration

	workload string
	scale    float64
	seed     uint64
	traceIn  string

	metricsAddr string
	progress    time.Duration
	sessionTag  string
}

// totals aggregates the client-observed outcome across sessions.
type totals struct {
	decisions atomic.Uint64
	degraded  atomic.Uint64
	replayed  atomic.Uint64
	errors    atomic.Uint64
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "", "prefetchd serving address (required)")
		sessions = fs.Int("sessions", 4, "concurrent client sessions")
		batch    = fs.Int("batch", 1, "accesses packed per exchange (1 = unbatched legacy protocol)")
		rate     = fs.Float64("rate", 0, "total target decisions/sec across all sessions (0 = closed-loop saturation)")
		duration = fs.Duration("duration", 10*time.Second, "how long to drive load")
		workload = fs.String("workload", "list", "workload generator for the access stream (see prefetchsim -list)")
		scale    = fs.Float64("scale", 0.1, "workload scale factor")
		seed     = fs.Uint64("seed", 1, "workload seed")
		traceIn  = fs.String("trace", "", "recorded trace file to replay instead of a generated workload")
		n        = fs.Int("n", loadgenSeq, "artifact sequence number (names the default output file)")
		out      = fs.String("out", "", "output path (default LOADGEN_<n>.json)")
		metrics  = fs.String("metrics", "", "daemon observability address (host:port) to scrape into the artifact")
		progress = fs.Duration("progress", 2*time.Second, "live progress interval (0 disables)")
		tag      = fs.String("session-tag", "", "session id prefix (default loadgen-<unix-nanos>, unique per run)")
		quiet    = fs.Bool("q", false, "suppress progress logging (errors still print)")
	)
	if err := fs.Parse(args); err != nil {
		return harness.ExitUsage
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "loadgen: unexpected arguments: %v\n", fs.Args())
		return harness.ExitUsage
	}
	logger := obs.NewLogger(stderr, "loadgen", *quiet, false)
	if *addr == "" {
		fmt.Fprintln(stderr, "loadgen: -addr is required")
		return harness.ExitUsage
	}
	if *sessions <= 0 || *duration <= 0 || *rate < 0 {
		fmt.Fprintln(stderr, "loadgen: -sessions and -duration must be positive, -rate non-negative")
		return harness.ExitUsage
	}
	if *batch < 1 || *batch > serve.MaxBatch {
		fmt.Fprintf(stderr, "loadgen: -batch must be 1..%d\n", serve.MaxBatch)
		return harness.ExitUsage
	}
	cfg := genConfig{
		addr: *addr, sessions: *sessions, batch: *batch, rate: *rate, duration: *duration,
		workload: *workload, scale: *scale, seed: *seed, traceIn: *traceIn,
		metricsAddr: *metrics, progress: *progress, sessionTag: *tag,
	}
	if cfg.sessionTag == "" {
		cfg.sessionTag = fmt.Sprintf("loadgen-%d", time.Now().UnixNano())
	}
	path := *out
	if path == "" {
		path = fmt.Sprintf("LOADGEN_%d.json", *n)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rep, err := drive(ctx, cfg, logger)
	if err != nil {
		if ctx.Err() != nil && rep == nil {
			logger.Error("cancelled", "err", err)
			return harness.ExitCancelled
		}
		logger.Error("load generation failed", "err", err)
		return harness.ExitRunFailed
	}
	rep.Loadgen = *n
	if err := loadreport.WriteAndVerify(rep, path); err != nil {
		logger.Error("artifact failed verification", "err", err)
		return harness.ExitRunFailed
	}
	fmt.Fprintf(stdout, "loadgen: wrote %s (%d decisions, %.0f/s, p50 %v p99 %v)\n",
		path, rep.Decisions, rep.AchievedRate,
		time.Duration(rep.Latency.P50NS).Round(time.Microsecond),
		time.Duration(rep.Latency.P99NS).Round(time.Microsecond))
	return harness.ExitOK
}

// loadFrames builds the access stream every session replays: a generated
// workload or a recorded trace, converted to wire frames.
func loadFrames(cfg genConfig) ([]serve.Frame, error) {
	var tr *trace.Trace
	if cfg.traceIn != "" {
		f, err := os.Open(cfg.traceIn)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if tr, err = trace.Read(f); err != nil {
			return nil, fmt.Errorf("loadgen: reading -trace: %w", err)
		}
	} else {
		w, err := workloads.ByName(cfg.workload)
		if err != nil {
			return nil, err
		}
		tr = w.Generate(workloads.GenConfig{Scale: cfg.scale, Seed: cfg.seed})
	}
	frames := serve.AccessFrames(tr)
	if len(frames) == 0 {
		return nil, fmt.Errorf("loadgen: access stream is empty")
	}
	return frames, nil
}

// drive runs the whole generation: spawn sessions, tick progress, join,
// scrape, assemble the report.
func drive(ctx context.Context, cfg genConfig, logger *slog.Logger) (*loadreport.Report, error) {
	frames, err := loadFrames(cfg)
	if err != nil {
		return nil, err
	}
	logger.Info("stream ready", "frames", len(frames), "sessions", cfg.sessions,
		"rate", cfg.rate, "duration", cfg.duration)

	// One shared registry: the latency histogram all sessions observe into
	// and the client_* transport counters.
	reg := obs.NewRegistry()
	lat := reg.Histogram("loadgen_latency_seconds",
		"client-observed decision latency (from scheduled send time in open loop)",
		obs.DefaultLatencyBuckets)

	var tot totals
	runCtx, cancel := context.WithTimeout(ctx, cfg.duration)
	defer cancel()

	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < cfg.sessions; i++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			if cfg.batch > 1 {
				driveSessionBatched(runCtx, cfg, idx, frames, reg, lat, &tot, logger)
			} else {
				driveSession(runCtx, cfg, idx, frames, reg, lat, &tot, logger)
			}
		}(i)
	}

	progressDone := make(chan struct{})
	if cfg.progress > 0 {
		go func() {
			defer close(progressDone)
			tick := time.NewTicker(cfg.progress)
			defer tick.Stop()
			var lastN uint64
			var lastT = start
			for {
				select {
				case <-runCtx.Done():
					return
				case now := <-tick.C:
					n := tot.decisions.Load()
					rate := float64(n-lastN) / now.Sub(lastT).Seconds()
					lastN, lastT = n, now
					logger.Info("progress",
						"decisions", n, "rate", fmt.Sprintf("%.0f/s", rate),
						"p50", time.Duration(lat.Quantile(0.50)*1e9).Round(time.Microsecond),
						"p95", time.Duration(lat.Quantile(0.95)*1e9).Round(time.Microsecond),
						"p99", time.Duration(lat.Quantile(0.99)*1e9).Round(time.Microsecond),
						"errors", tot.errors.Load(), "degraded", tot.degraded.Load())
				}
			}
		}()
	} else {
		close(progressDone)
	}

	wg.Wait()
	elapsed := time.Since(start)
	cancel()
	<-progressDone

	// A signal (not the timer) ending the run early is a cancellation —
	// unless enough ran to still be a usable measurement.
	if ctx.Err() != nil && tot.decisions.Load() == 0 {
		return nil, ctx.Err()
	}

	rep := &loadreport.Report{
		Schema:     loadreport.Schema,
		Sessions:   cfg.sessions,
		Batch:      cfg.batch,
		TargetRate: cfg.rate,
		OpenLoop:   cfg.rate > 0,
		DurationNS: elapsed.Nanoseconds(),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Decisions:  tot.decisions.Load(),
		Degraded:   tot.degraded.Load(),
		Replayed:   tot.replayed.Load(),
		Errors:     tot.errors.Load(),
		Busy:       reg.Counter(client.MetricClientBusy, "").Value(),
		Retries:    reg.Counter(client.MetricClientRetries, "").Value(),
		Reconnects: reg.Counter(client.MetricClientReconnects, "").Value(),
		Latency: loadreport.Percentiles{
			P50NS:  int64(lat.Quantile(0.50) * 1e9),
			P95NS:  int64(lat.Quantile(0.95) * 1e9),
			P99NS:  int64(lat.Quantile(0.99) * 1e9),
			P999NS: int64(lat.Quantile(0.999) * 1e9),
		},
	}
	if cfg.traceIn != "" {
		rep.TraceFile = cfg.traceIn
	} else {
		rep.Workload, rep.Scale, rep.Seed = cfg.workload, cfg.scale, cfg.seed
	}
	if d := rep.Decisions; d > 0 {
		rep.AchievedRate = float64(d) / elapsed.Seconds()
		rep.DegradedRate = float64(rep.Degraded) / float64(d)
		rep.BusyRate = float64(rep.Busy) / float64(d)
	}
	if cfg.metricsAddr != "" {
		scrape, err := scrapeServer(cfg.metricsAddr)
		if err != nil {
			return nil, fmt.Errorf("loadgen: scraping -metrics: %w", err)
		}
		rep.Server = scrape
	}
	return rep, nil
}

// driveSession is one session's send loop. In open loop, request k's
// scheduled send time is start + k*interval and latency is measured from
// it; a daemon that can't keep up accumulates schedule debt that shows up
// in the tail, exactly as queued real clients would experience it.
func driveSession(ctx context.Context, cfg genConfig, idx int, frames []serve.Frame,
	reg *obs.Registry, lat *obs.Histogram, tot *totals, logger *slog.Logger) {
	cl, err := client.Dial(client.Config{
		Addr:    client.FixedAddr(cfg.addr),
		Session: fmt.Sprintf("%s-%d", cfg.sessionTag, idx),
		Reg:     reg,
	})
	if err != nil {
		tot.errors.Add(1)
		logger.Error("session dial failed", "session", idx, "err", err)
		return
	}
	defer cl.Close()

	var interval time.Duration
	if cfg.rate > 0 {
		interval = time.Duration(float64(cfg.sessions) / cfg.rate * float64(time.Second))
	}
	start := time.Now()
	var k, seq uint64
	fi := 0
	for ctx.Err() == nil {
		var scheduled time.Time
		if interval > 0 {
			scheduled = start.Add(time.Duration(k) * interval)
			k++
			if d := time.Until(scheduled); d > 0 {
				select {
				case <-ctx.Done():
					return
				case <-time.After(d):
				}
			}
		} else {
			scheduled = time.Now()
		}
		seq++
		fr := frames[fi] // by value; the template is shared read-only
		if fi++; fi == len(frames) {
			fi = 0
		}
		fr.Seq = seq
		dec, err := cl.Decide(&fr)
		if err != nil {
			if ctx.Err() != nil {
				return // shutdown races look like request errors
			}
			tot.errors.Add(1)
			if rw, ok := err.(*client.RewindError); ok {
				seq = rw.ServerSeq // replay from the daemon's high-water mark
			}
			continue
		}
		lat.Observe(time.Since(scheduled).Seconds())
		tot.decisions.Add(1)
		if dec.Degraded {
			tot.degraded.Add(1)
		}
		if dec.Replayed {
			tot.replayed.Add(1)
		}
	}
}

// driveSessionBatched is driveSession for -batch > 1: it packs batches
// of cfg.batch accesses per DecideBatch exchange. In open loop each
// member keeps its own scheduled send time (start + k*interval) and the
// batch is written when the *last* member comes due; each member's
// latency is measured from its own schedule, so the wait for the batch
// to fill is charged to the early members rather than hidden. In closed
// loop the next batch forms the moment the previous reply lands, and
// every member is timed from the batch's send.
func driveSessionBatched(ctx context.Context, cfg genConfig, idx int, frames []serve.Frame,
	reg *obs.Registry, lat *obs.Histogram, tot *totals, logger *slog.Logger) {
	cl, err := client.Dial(client.Config{
		Addr:     client.FixedAddr(cfg.addr),
		Session:  fmt.Sprintf("%s-%d", cfg.sessionTag, idx),
		MaxBatch: cfg.batch,
		Reg:      reg,
	})
	if err != nil {
		tot.errors.Add(1)
		logger.Error("session dial failed", "session", idx, "err", err)
		return
	}
	defer cl.Close()

	var interval time.Duration
	if cfg.rate > 0 {
		interval = time.Duration(float64(cfg.sessions) / cfg.rate * float64(time.Second))
	}
	start := time.Now()
	var k, seq uint64
	fi := 0
	accs := make([]serve.BatchAccess, cfg.batch)
	sched := make([]time.Time, cfg.batch)
	for ctx.Err() == nil {
		for j := 0; j < cfg.batch; j++ {
			if interval > 0 {
				sched[j] = start.Add(time.Duration(k) * interval)
				k++
			}
			fr := &frames[fi] // the template is shared read-only
			if fi++; fi == len(frames) {
				fi = 0
			}
			seq++
			accs[j] = serve.BatchAccess{
				Seq: seq, PC: fr.PC, Addr: fr.Addr, Value: fr.Value, Reg: fr.Reg,
				BranchHist: fr.BranchHist, Store: fr.Store, Hints: fr.Hints,
			}
		}
		if interval > 0 {
			if d := time.Until(sched[cfg.batch-1]); d > 0 {
				select {
				case <-ctx.Done():
					return
				case <-time.After(d):
				}
			}
		} else {
			now := time.Now()
			for j := range sched {
				sched[j] = now
			}
		}
		res, err := cl.DecideBatch(accs, sched)
		if err != nil {
			if ctx.Err() != nil {
				return // shutdown races look like request errors
			}
			tot.errors.Add(1)
			if rw, ok := err.(*client.RewindError); ok {
				seq = rw.ServerSeq // replay from the daemon's high-water mark
			}
			continue
		}
		for j := range res {
			lat.Observe(time.Since(sched[j]).Seconds())
			tot.decisions.Add(1)
			if res[j].Degraded {
				tot.degraded.Add(1)
			}
			if res[j].Replayed {
				tot.replayed.Add(1)
			}
		}
	}
}

// scrapeServer pulls the daemon's expvar endpoint and extracts the
// serving counters and latency histogram counts. The session workers
// observe a frame's latency just after writing its reply, so the very
// last decisions can trail the counter for a moment — scrape until the
// counts settle at the invariant (every histogram count ==
// decisions_total) or a short deadline passes, then report what stands.
func scrapeServer(addr string) (*loadreport.ServerScrape, error) {
	// A private transport so the keep-alive connection (and its two
	// transport goroutines) is torn down when the scrape finishes.
	hc := &http.Client{Transport: &http.Transport{}}
	defer hc.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for {
		s, err := scrapeOnce(hc, addr)
		if err != nil {
			return nil, err
		}
		settled := true
		for _, c := range s.LatencyCounts {
			settled = settled && c == s.DecisionsTotal
		}
		if b := s.BatchSize; b != nil {
			settled = settled && uint64(b.Sum+0.5) == s.DecisionsTotal
		}
		if settled || time.Now().After(deadline) {
			return s, nil
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func scrapeOnce(hc *http.Client, addr string) (*loadreport.ServerScrape, error) {
	resp, err := hc.Get("http://" + addr + "/debug/vars")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var vars struct {
		Semloc map[string]json.RawMessage `json:"semloc"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		return nil, fmt.Errorf("parsing /debug/vars: %w", err)
	}
	counter := func(name string) uint64 {
		var v uint64
		if raw, ok := vars.Semloc[name]; ok {
			json.Unmarshal(raw, &v)
		}
		return v
	}
	s := &loadreport.ServerScrape{
		DecisionsTotal: counter("serve_decisions_total"),
		DegradedTotal:  counter("serve_degraded_total"),
		ReplayedTotal:  counter("serve_replayed_total"),
		BusyTotal:      counter("serve_busy_total"),
		LatencyCounts:  map[string]uint64{},
	}
	for _, name := range []string{
		serve.MetricDecodeLatency, serve.MetricQueueWaitLatency,
		serve.MetricDecideLatency, serve.MetricWriteLatency, serve.MetricFrameLatency,
	} {
		raw, ok := vars.Semloc[name]
		if !ok {
			return nil, fmt.Errorf("daemon exports no %s histogram (serving-path tracing disabled?)", name)
		}
		var h struct {
			Count uint64  `json:"count"`
			Sum   float64 `json:"sum"`
		}
		if err := json.Unmarshal(raw, &h); err != nil {
			return nil, fmt.Errorf("parsing %s: %w", name, err)
		}
		s.LatencyCounts[name] = h.Count
		if name == serve.MetricFrameLatency {
			s.FrameLatencySumNS = int64(h.Sum * 1e9)
		}
	}
	s.CoalescedWritesTotal = counter("serve_coalesced_writes_total")
	if raw, ok := vars.Semloc[serve.MetricBatchSize]; ok {
		var h struct {
			Count   uint64            `json:"count"`
			Sum     float64           `json:"sum"`
			Buckets map[string]uint64 `json:"buckets"`
		}
		if err := json.Unmarshal(raw, &h); err != nil {
			return nil, fmt.Errorf("parsing %s: %w", serve.MetricBatchSize, err)
		}
		if h.Count > 0 {
			s.BatchSize = &loadreport.BatchSizeSummary{
				Count: h.Count,
				Sum:   h.Sum,
				Mean:  h.Sum / float64(h.Count),
				P50:   bucketQuantile(h.Buckets, 0.50),
				P95:   bucketQuantile(h.Buckets, 0.95),
			}
		}
	}
	return s, nil
}

// bucketQuantile reconstructs a quantile from an expvar histogram's
// cumulative buckets, with the same linear interpolation
// obs.Histogram.Quantile applies to the live counts.
func bucketQuantile(cum map[string]uint64, q float64) float64 {
	type bucket struct {
		bound float64
		cum   uint64
	}
	var bks []bucket
	var total uint64
	for k, v := range cum {
		if k == "+Inf" {
			total = v
			continue
		}
		b, err := strconv.ParseFloat(k, 64)
		if err != nil {
			continue
		}
		bks = append(bks, bucket{b, v})
	}
	sort.Slice(bks, func(i, j int) bool { return bks[i].bound < bks[j].bound })
	if total == 0 && len(bks) > 0 {
		total = bks[len(bks)-1].cum
	}
	if total == 0 || len(bks) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var prev uint64
	lower := 0.0
	for _, b := range bks {
		c := float64(b.cum - prev)
		if float64(prev)+c >= rank && c > 0 {
			return lower + (rank-float64(prev))/c*(b.bound-lower)
		}
		prev = b.cum
		lower = b.bound
	}
	return bks[len(bks)-1].bound
}
