# Development workflow for the semloc reproduction. `make check` is the
# full gate: vet + build + race-enabled tests + a short fuzz run of the
# trace decoder (seed corpus under internal/trace/testdata/fuzz/).

GO ?= go

.PHONY: all vet build test race fuzz check clean

all: build

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fuzz:
	$(GO) test -fuzz=FuzzReader -fuzztime=10s ./internal/trace

check: vet build race fuzz

clean:
	$(GO) clean ./...
