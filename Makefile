# Development workflow for the semloc reproduction. `make check` is the
# full gate: vet + build + race-enabled tests + a short fuzz run of the
# trace decoder (seed corpus under internal/trace/testdata/fuzz/) + a
# quick-mode benchmark smoke that fails unless cmd/bench produces a
# well-formed report.

GO ?= go
BENCH_N ?= 2

.PHONY: all vet build test race fuzz bench bench-smoke check clean

all: build

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fuzz:
	$(GO) test -fuzz=FuzzReader -fuzztime=10s ./internal/trace

# bench runs the full fixed (workload, prefetcher) matrix and records the
# perf trajectory at the repo root (see DESIGN.md, "Hot path & benchmarking").
bench:
	$(GO) run ./cmd/bench -n $(BENCH_N) -v

# bench-smoke is the tier-1 gate: the quick matrix must complete and emit
# well-formed JSON (cmd/bench validates its own output and exits non-zero
# otherwise).
bench-smoke:
	$(GO) run ./cmd/bench -quick -out .bench-smoke.json
	rm -f .bench-smoke.json

check: vet build race fuzz bench-smoke

clean:
	rm -f .bench-smoke.json
	$(GO) clean ./...
