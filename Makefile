# Development workflow for the semloc reproduction. `make check` is the
# full gate: vet + build + race-enabled tests + short fuzz runs of the
# trace decoder and the prefetchd wire-frame decoder + a quick-mode
# benchmark smoke that fails unless cmd/bench produces a well-formed
# report + an overhead guard that pins the disabled-telemetry hot path at
# zero allocations per access + a race-enabled live observability smoke
# (sweep with -listen, /metrics scraped mid-run, leak-checked shutdown) +
# a race-enabled serving smoke (prefetchd SIGTERM drain, snapshot
# warm-start, chaos transport) + a race-enabled learner-introspection
# smoke (instrumented sweep rendered via inspect learner, live explain
# round-trip against prefetchd).

GO ?= go
BENCH_N ?= 4

.PHONY: all vet build test race fuzz bench bench-smoke bench-diff overhead-guard obs-smoke serve-smoke loadgen-smoke loadgen-gate learner-smoke check clean

all: build

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# fuzz smokes both untrusted-input decoders: the trace reader and the
# prefetchd wire-protocol frame decoder (go test allows one -fuzz pattern
# per invocation, hence two runs).
fuzz:
	$(GO) test -fuzz=FuzzReader -fuzztime=10s ./internal/trace
	$(GO) test -fuzz=FuzzDecodeFrame -fuzztime=10s ./internal/serve

# bench runs the full fixed (workload, prefetcher) matrix and records the
# perf trajectory at the repo root (see DESIGN.md, "Hot path & benchmarking").
bench:
	$(GO) run ./cmd/bench -n $(BENCH_N) -v

# bench-smoke is the tier-1 gate: the quick matrix must complete and emit
# well-formed JSON (cmd/bench validates its own output and exits non-zero
# otherwise).
bench-smoke:
	$(GO) run ./cmd/bench -quick -out .bench-smoke.json
	rm -f .bench-smoke.json

# bench-diff compares two recorded perf reports and fails on regression
# (>10% ns/access on any shared matrix cell, or any real allocs/access
# increase). Override OLD/NEW to compare other baselines:
#   make bench-diff OLD=BENCH_2.json NEW=BENCH_3.json
OLD ?= BENCH_3.json
NEW ?= BENCH_$(BENCH_N).json
bench-diff:
	$(GO) run ./cmd/bench -compare $(OLD) $(NEW)

# overhead-guard pins the telemetry overhead contract (DESIGN.md §11):
# with telemetry disabled, core.Prefetcher.OnAccess must stay at
# 0 allocs/op and within noise of the BENCH_2-era baseline (~320 ns/op
# on the reference machine). The ns/op ceiling is deliberately loose to
# absorb machine variance while still catching a hook that adds real
# per-access work.
OVERHEAD_NS_CEILING ?= 900
overhead-guard:
	$(GO) test -run '^$$' -bench '^BenchmarkOnAccess$$' -benchmem ./internal/core | tee .overhead-guard.txt
	awk -v ceil=$(OVERHEAD_NS_CEILING) \
		'/^BenchmarkOnAccess(-[0-9]+)?[ \t]/ { found=1; \
		   if ($$7+0 != 0) { print "overhead-guard: "$$7" allocs/op on the disabled-telemetry hot path (want 0)"; exit 1 }; \
		   if ($$3+0 > ceil) { print "overhead-guard: "$$3" ns/op exceeds ceiling "ceil; exit 1 } } \
		 END { if (!found) { print "overhead-guard: BenchmarkOnAccess missing from output"; exit 1 } }' \
		.overhead-guard.txt
	rm -f .overhead-guard.txt

# obs-smoke drives the live-observability loop end to end (DESIGN.md §13):
# a sweep runs with -listen 127.0.0.1:0 and -spans, /metrics is scraped
# while it executes, and the test asserts the listener (and its serving
# goroutine) are gone after a clean exit plus that the span file parses.
# Run under the race detector so a leaked goroutine or racy counter fails
# loudly; vet rides along for the CI step that invokes this target alone.
obs-smoke:
	$(GO) vet ./...
	$(GO) test -race -count=1 -run '^TestSweepLiveEndpoint$$' ./cmd/sweep

# serve-smoke proves the prefetchd robustness story end to end, race
# enabled: the daemon binary is built and booted, a client streams accesses
# against an in-process reference, SIGTERM lands mid-stream (clean drain +
# final snapshot), and the restarted daemon must resume the session
# bit-identically (DESIGN.md §14). The chaos transport tests (lossy proxy,
# abrupt kill + rewind replay) ride along from the client package.
serve-smoke:
	$(GO) test -race -count=1 -run '^TestSigtermDrainWarmStart$$' ./cmd/prefetchd
	$(GO) test -race -count=1 -run '^TestChaos' ./internal/serve/client

# loadgen-smoke drives the serving-path observability loop end to end,
# race enabled (DESIGN.md §16): closed-loop load-generator runs at
# batch=1 and batch=16 (subtests of TestLoadgenSmoke) against an
# instrumented in-process daemon must each produce a validating
# LOADGEN_<n>.json whose client and server views agree (every
# serve_*_latency histogram count equals serve_decisions_total, and for
# batched runs sum(serve_batch_size) re-adds to the same total), plus the
# alloc guards pinning the disabled/unsampled serve tracer and the
# steady-state batch codec at 0 allocs/op (DESIGN.md §17).
loadgen-smoke:
	$(GO) test -race -count=1 -run '^TestLoadgenSmoke$$/^batch=1$$' ./cmd/loadgen
	$(GO) test -race -count=1 -run '^TestLoadgenSmoke$$/^batch=16$$' ./cmd/loadgen
	$(GO) test -count=1 -run '^(TestTracerDisabledZeroAlloc|TestSteadyStateCodecZeroAlloc)$$' ./internal/serve

# loadgen-gate replays the recorded load-test trajectory: the committed
# batched artifact (LOADGEN_2, batch 16) must hold its throughput edge
# over the committed unbatched baseline (LOADGEN_1). Both files were
# recorded on the same machine in the same config (batch aside), so the
# comparison is deterministic — CI never re-measures saturation on shared
# runners, it only verifies the recorded artifacts still validate and
# still show the batched pipeline ahead.
loadgen-gate:
	$(GO) run ./cmd/inspect serve -min-rate-ratio 1 LOADGEN_1.json LOADGEN_2.json

# learner-smoke proves the learner-introspection layer end to end, race
# enabled (DESIGN.md §18): an instrumented sweep's artifact renders through
# `inspect learner` (health report, curve, anomaly gate), and a live
# prefetchd session round-trips stats-with-health and an explain frame that
# the same subcommand pretty-prints. The introspection bit-identity and
# zero-alloc guards ride along from exp and core.
learner-smoke:
	$(GO) test -race -count=1 -run '^TestLearnerSmoke$$' ./cmd/inspect
	$(GO) test -race -count=1 -run '^TestRunJobsLearnerObsMatchesDisabled$$' ./internal/exp
	$(GO) test -count=1 -run '^TestLearnerHealthSnapshotZeroAlloc$$' ./internal/core

check: vet build race fuzz bench-smoke overhead-guard obs-smoke serve-smoke loadgen-smoke loadgen-gate learner-smoke

clean:
	rm -f .bench-smoke.json .overhead-guard.txt
	$(GO) clean ./...
